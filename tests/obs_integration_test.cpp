// Integration tests for the observability layer: attaching the Observer
// must not perturb simulation results (golden-digest invariance), and the
// emitted trace/metrics files must be byte-identical at any --jobs value
// (the determinism contract in DESIGN.md §8).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"

namespace netrs::harness {
namespace {

// Same digest as golden_digest_test.cpp: FNV-1a over every latency
// sample's bit pattern plus all summary statistics.
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

std::uint64_t result_digest(const ExperimentResult& res) {
  Digest d;
  d.add_u64(res.latencies_ms.count());
  for (double s : res.latencies_ms.samples()) d.add_double(s);
  d.add_u64(res.issued);
  d.add_u64(res.completed);
  d.add_u64(res.redundant);
  d.add_u64(res.cancels);
  d.add_double(res.avg_forwards);
  d.add_double(res.wire_bytes_per_request);
  d.add_double(res.load_oscillation);
  return d.value();
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 1500;
  cfg.repeats = 2;
  cfg.seed = 29;
  cfg.jobs = 1;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ObsIntegrationTest, ObservabilityDoesNotPerturbResults) {
  const ExperimentConfig base = small_config();
  const std::uint64_t plain =
      result_digest(run_experiment(Scheme::kNetRSIlp, base));

  ExperimentConfig traced = base;
  traced.obs.trace_path = ::testing::TempDir() + "obs_itest_perturb.json";
  traced.obs.metrics_path = ::testing::TempDir() + "obs_itest_perturb.csv";
  const std::uint64_t observed =
      result_digest(run_experiment(Scheme::kNetRSIlp, traced));

  EXPECT_EQ(plain, observed)
      << "attaching the Observer changed simulation behavior";
}

TEST(ObsIntegrationTest, TraceAndMetricsBytesIdenticalAcrossJobs) {
  ExperimentConfig cfg = small_config();
  cfg.obs.trace_path = ::testing::TempDir() + "obs_itest_j1.json";
  cfg.obs.metrics_path = ::testing::TempDir() + "obs_itest_j1.csv";
  cfg.jobs = 1;
  const std::uint64_t d1 = result_digest(run_experiment(Scheme::kCliRS, cfg));

  cfg.obs.trace_path = ::testing::TempDir() + "obs_itest_j4.json";
  cfg.obs.metrics_path = ::testing::TempDir() + "obs_itest_j4.csv";
  cfg.jobs = 4;
  const std::uint64_t d4 = result_digest(run_experiment(Scheme::kCliRS, cfg));

  EXPECT_EQ(d1, d4);
  const std::string t1 = slurp(::testing::TempDir() + "obs_itest_j1.json");
  const std::string t4 = slurp(::testing::TempDir() + "obs_itest_j4.json");
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t4) << "trace JSON differs between --jobs 1 and --jobs 4";

  const std::string m1 = slurp(::testing::TempDir() + "obs_itest_j1.csv");
  const std::string m4 = slurp(::testing::TempDir() + "obs_itest_j4.csv");
  EXPECT_FALSE(m1.empty());
  EXPECT_EQ(m1, m4) << "metrics CSV differs between --jobs 1 and --jobs 4";

  // Structural sanity on the emitted artifacts.
  EXPECT_EQ(t1.front(), '{');
  EXPECT_NE(t1.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t1.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(m1.rfind("repeat,time_us,metric,value\n", 0), 0u);
  // Both repeats contributed (pid metadata / repeat column).
  EXPECT_NE(t1.find("repeat 1"), std::string::npos);
  EXPECT_NE(m1.find("\n1,"), std::string::npos);
}

TEST(ObsIntegrationTest, ResultCarriesSummariesWhenEnabled) {
  ExperimentConfig cfg = small_config();
  cfg.obs.trace_path = ::testing::TempDir() + "obs_itest_sum.json";
  cfg.obs.metrics_path = ::testing::TempDir() + "obs_itest_sum.csv";
  const ExperimentResult r = run_experiment(Scheme::kNetRSToR, cfg);

  EXPECT_GT(r.trace_events, 0u);
  ASSERT_TRUE(r.metrics.enabled());
  bool saw_latency = false;
  for (const obs::MetricSummaryEntry& e : r.metrics.entries) {
    // Summarized columns never embed per-repeat placement ids (those are
    // registered summarize=false because their names differ per repeat).
    EXPECT_EQ(e.name.find("qdepth.s"), std::string::npos) << e.name;
    EXPECT_EQ(e.name.find("util.core"), std::string::npos) << e.name;
    if (e.name == "latency_ms.count") saw_latency = true;
    EXPECT_GT(e.samples, 0u) << e.name;
  }
  EXPECT_TRUE(saw_latency);
}

}  // namespace
}  // namespace netrs::harness
