// Cross-server cancellation of redundant requests (extension; "The Tail at
// Scale" technique the paper cites alongside CliRS-R95).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"
#include "netrs/packet_format.hpp"

namespace netrs::kv {
namespace {

class CancelRig : public ::testing::Test {
 protected:
  CancelRig() : topo(4), fabric(sim, topo, net::FabricConfig{}) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    server_hosts = {topo.host_id(0, 0, 0), topo.host_id(0, 0, 1),
                    topo.host_id(0, 1, 0)};
    ring = std::make_unique<ConsistentHashRing>(server_hosts, 3, 8);
    zipf = std::make_unique<sim::ZipfDistribution>(100, 0.99);
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<net::HostId> server_hosts;
  std::unique_ptr<ConsistentHashRing> ring;
  std::unique_ptr<sim::ZipfDistribution> zipf;
  std::vector<std::unique_ptr<Server>> servers;
};

TEST_F(CancelRig, AppRequestOpRoundTrips) {
  AppRequest r;
  r.client_request_id = 9;
  r.key = 7;
  r.op = AppOp::kCancel;
  const auto bytes = encode_app_request(r);
  EXPECT_EQ(bytes.size(), kAppRequestBytes);
  const auto back = decode_app_request(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, AppOp::kCancel);
  EXPECT_EQ(back->client_request_id, 9u);
}

TEST_F(CancelRig, DecodeRejectsUnknownOp) {
  AppRequest r;
  auto bytes = encode_app_request(r);
  bytes[16] = std::byte{0x7F};
  EXPECT_FALSE(decode_app_request(bytes).has_value());
}

// A direct server-level test: queue two requests behind a long one, cancel
// the queued one, and verify it answers immediately with an empty value.
class RawClient final : public net::Host {
 public:
  using Host::Host;
  void receive(net::Packet pkt, net::NodeId) override {
    responses.push_back(std::move(pkt));
    times.push_back(simulator().now());
  }
  void transmit(net::Packet pkt) { send(std::move(pkt)); }
  std::vector<net::Packet> responses;
  std::vector<sim::Time> times;
};

net::Packet raw_request(net::HostId dst, std::uint64_t id, AppOp op) {
  core::RequestHeader rh;
  rh.mf = core::magic_f(core::kMagicMonitor);  // plain-labelled
  AppRequest ar;
  ar.client_request_id = id;
  ar.key = 1;
  ar.op = op;
  net::Packet p;
  p.dst = dst;
  p.src_port = kClientPort;
  p.dst_port = kServerPort;
  p.payload = core::encode_request(rh, encode_app_request(ar));
  return p;
}

TEST_F(CancelRig, ServerCancelsQueuedRequest) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.deterministic_service = true;
  cfg.parallelism = 1;
  cfg.mean_service_time = sim::millis(10);
  const net::HostId server_host = server_hosts[0];
  servers.push_back(
      std::make_unique<Server>(fabric, server_host, cfg, sim::Rng(1)));
  RawClient client(fabric, topo.host_id(0, 1, 1));

  client.transmit(raw_request(server_host, 100, AppOp::kGet));  // serving
  client.transmit(raw_request(server_host, 101, AppOp::kGet));  // queued
  sim.run_until(sim::millis(2));
  client.transmit(raw_request(server_host, 101, AppOp::kCancel));
  sim.run();

  ASSERT_EQ(client.responses.size(), 2u);
  EXPECT_EQ(servers[0]->cancelled(), 1u);
  EXPECT_EQ(servers[0]->served(), 1u);  // only the first consumed service

  // The cancelled response came back long before the 10ms service would
  // have finished it, and carries an empty value.
  const auto r0 = decode_app_response(
      core::response_app_payload(client.responses[0].payload));
  ASSERT_TRUE(r0.has_value());
  EXPECT_EQ(r0->client_request_id, 101u);
  EXPECT_EQ(r0->value_bytes, 0u);
  EXPECT_LT(client.times[0], sim::millis(5));
}

TEST_F(CancelRig, CancelForUnknownRequestIsIgnored) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.mean_service_time = sim::millis(1);
  servers.push_back(
      std::make_unique<Server>(fabric, server_hosts[0], cfg, sim::Rng(2)));
  RawClient client(fabric, topo.host_id(0, 1, 1));
  client.transmit(raw_request(server_hosts[0], 999, AppOp::kCancel));
  sim.run();
  EXPECT_TRUE(client.responses.empty());
  EXPECT_EQ(servers[0]->cancelled(), 0u);
}

TEST_F(CancelRig, CancelOnlyMatchesSameClient) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.deterministic_service = true;
  cfg.parallelism = 1;
  cfg.mean_service_time = sim::millis(5);
  servers.push_back(
      std::make_unique<Server>(fabric, server_hosts[0], cfg, sim::Rng(3)));
  RawClient alice(fabric, topo.host_id(0, 1, 1));
  RawClient bob(fabric, topo.host_id(1, 0, 0));

  alice.transmit(raw_request(server_hosts[0], 1, AppOp::kGet));  // serving
  alice.transmit(raw_request(server_hosts[0], 7, AppOp::kGet));  // queued
  sim.run_until(sim::millis(2));
  // Bob cancels "7" — but *his* 7, which does not exist. Alice's stays.
  bob.transmit(raw_request(server_hosts[0], 7, AppOp::kCancel));
  sim.run();
  EXPECT_EQ(servers[0]->cancelled(), 0u);
  EXPECT_EQ(alice.responses.size(), 2u);
  EXPECT_EQ(servers[0]->served(), 2u);
}

// End-to-end: a redundant client with cancellation settles every request
// and actually removes queued duplicates under load.
TEST_F(CancelRig, ClientCancelsLosingCopies) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.parallelism = 1;
  scfg.mean_service_time = sim::millis(2);
  for (net::HostId h : server_hosts) {
    servers.push_back(std::make_unique<Server>(fabric, h, scfg,
                                               sim::Rng(10 + h)));
  }
  ClientConfig ccfg;
  ccfg.arrival_rate = 400.0;
  ccfg.redundancy.enabled = true;
  ccfg.redundancy.min_samples = 10;
  ccfg.redundancy.cancel_on_completion = true;
  Client client(fabric, topo.host_id(0, 1, 1), ccfg, *ring, *zipf,
                sim::Rng(4));
  client.start();
  sim.run_until(sim::seconds(2));
  client.stop();
  sim.run_until(sim.now() + sim::seconds(1));

  EXPECT_GT(client.redundant_sent(), 0u);
  EXPECT_GT(client.cancels_sent(), 0u);
  EXPECT_EQ(client.completed(), client.issued());
  EXPECT_EQ(client.in_flight(), 0u);
  std::uint64_t cancelled = 0;
  for (const auto& s : servers) cancelled += s->cancelled();
  EXPECT_GT(cancelled, 0u);
}

}  // namespace
}  // namespace netrs::kv
