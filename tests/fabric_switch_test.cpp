#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hpp"
#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace netrs::net {
namespace {

// A host that records everything it receives.
class SinkHost final : public Host {
 public:
  using Host::Host;
  void receive(Packet pkt, NodeId from) override {
    received.push_back(std::move(pkt));
    froms.push_back(from);
    received_at.push_back(simulator().now());
  }
  void transmit(Packet pkt) { send(std::move(pkt)); }

  std::vector<Packet> received;
  std::vector<NodeId> froms;
  std::vector<sim::Time> received_at;
};

struct Rig {
  sim::Simulator sim;
  FatTree topo{4};
  Fabric fabric{sim, topo, FabricConfig{}};
  std::vector<std::unique_ptr<Switch>> switches;
  std::vector<std::unique_ptr<SinkHost>> hosts;

  Rig() {
    for (NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    for (HostId h = 0; h < topo.host_count(); ++h) {
      hosts.push_back(std::make_unique<SinkHost>(fabric, h));
    }
  }

  Packet make_packet(HostId src, HostId dst) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.src_port = 9000;
    p.dst_port = 7000;
    p.payload.resize(32);
    return p;
  }
};

TEST(FabricTest, DeliversAcrossRackWithCorrectLatency) {
  Rig rig;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(0, 0, 1);  // same rack: 2 host links
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  ASSERT_EQ(rig.hosts[dst]->received.size(), 1u);
  // host->ToR (30us) + ToR->host (30us).
  EXPECT_EQ(rig.hosts[dst]->received_at[0], sim::micros(60));
  EXPECT_EQ(rig.hosts[dst]->received[0].meta.forwards, 1u);
}

TEST(FabricTest, DeliversAcrossPodsWithFiveForwards) {
  Rig rig;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(3, 1, 1);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  ASSERT_EQ(rig.hosts[dst]->received.size(), 1u);
  EXPECT_EQ(rig.hosts[dst]->received[0].meta.forwards, 5u);
  // 2 host links + 4 switch links, all 30us.
  EXPECT_EQ(rig.hosts[dst]->received_at[0], sim::micros(180));
}

TEST(FabricTest, AllPairsDeliver) {
  Rig rig;
  int expected = 0;
  for (HostId src = 0; src < rig.topo.host_count(); src += 3) {
    for (HostId dst = 0; dst < rig.topo.host_count(); dst += 5) {
      if (src == dst) continue;
      rig.hosts[src]->transmit(rig.make_packet(src, dst));
      ++expected;
    }
  }
  rig.sim.run();
  int delivered = 0;
  for (const auto& h : rig.hosts) {
    delivered += static_cast<int>(h->received.size());
  }
  EXPECT_EQ(delivered, expected);
}

TEST(FabricTest, PacketsArriveFromTorPort) {
  Rig rig;
  const HostId src = rig.topo.host_id(1, 0, 0);
  const HostId dst = rig.topo.host_id(1, 1, 1);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  ASSERT_EQ(rig.hosts[dst]->froms.size(), 1u);
  EXPECT_EQ(rig.hosts[dst]->froms[0], rig.topo.host_tor(dst));
}

TEST(FabricTest, WireSizeAccountsPhantomBytes) {
  Packet p;
  p.payload.resize(24);
  EXPECT_EQ(p.wire_size(), 46u + 24u);
  p.phantom_payload = 1024;
  EXPECT_EQ(p.wire_size(), 46u + 24u + 1024u);
}

TEST(FabricTest, FlowHashStableAndPortSensitive) {
  Packet a;
  a.src = 1;
  a.dst = 2;
  a.src_port = 10;
  a.dst_port = 20;
  Packet b = a;
  EXPECT_EQ(Fabric::flow_hash(a), Fabric::flow_hash(b));
  b.src_port = 11;
  EXPECT_NE(Fabric::flow_hash(a), Fabric::flow_hash(b));
}

// Ingress stage behaviors: rewrite + steer + consume.
class CountingStage final : public Switch::IngressStage {
 public:
  Switch::Disposition on_ingress(Packet& pkt, NodeId from,
                                 Switch& sw) override {
    (void)pkt;
    (void)from;
    (void)sw;
    ++seen;
    return Switch::Continue{};
  }
  int seen = 0;
};

TEST(SwitchTest, IngressStagesRunPerPacket) {
  Rig rig;
  CountingStage stage;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(0, 1, 0);
  // Install on the source ToR.
  const NodeId tor = rig.topo.host_tor(src);
  rig.switches[tor]->add_ingress_stage(&stage);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  EXPECT_EQ(stage.seen, 2);
  EXPECT_EQ(rig.hosts[dst]->received.size(), 2u);
}

// Steers packets toward `target` until they visit it, then marks them done
// (payload byte 0) — the same "relabel at the RSNode" idea NetRS rules use
// to avoid steering loops on the way back down.
class SteeringStage final : public Switch::IngressStage {
 public:
  explicit SteeringStage(NodeId target) : target_(target) {}
  Switch::Disposition on_ingress(Packet& pkt, NodeId from,
                                 Switch& sw) override {
    (void)from;
    if (pkt.payload[0] == std::byte{1}) return Switch::Continue{};
    if (sw.id() == target_) {
      pkt.payload[0] = std::byte{1};
      return Switch::Continue{};
    }
    return Switch::Steer{target_};
  }

 private:
  NodeId target_;
};

TEST(SwitchTest, SteerDetoursThroughTargetSwitch) {
  Rig rig;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(0, 0, 1);  // same rack
  const NodeId core = rig.topo.core_node(0, 0);
  // Steer everything through a core switch from every switch it touches.
  std::vector<std::unique_ptr<SteeringStage>> stages;
  for (auto& sw : rig.switches) {
    stages.push_back(std::make_unique<SteeringStage>(core));
    sw->add_ingress_stage(stages.back().get());
  }
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  ASSERT_EQ(rig.hosts[dst]->received.size(), 1u);
  // Same-rack default is 1 forward; via the core it is 5 (the paper's
  // extra-hop example: 4 extra forwards for tier-2 traffic via core).
  EXPECT_EQ(rig.hosts[dst]->received[0].meta.forwards, 5u);
}

class ConsumingStage final : public Switch::IngressStage {
 public:
  Switch::Disposition on_ingress(Packet& pkt, NodeId from,
                                 Switch& sw) override {
    (void)pkt;
    (void)from;
    (void)sw;
    ++eaten;
    return Switch::Consumed{};
  }
  int eaten = 0;
};

TEST(SwitchTest, ConsumedPacketsStop) {
  Rig rig;
  ConsumingStage stage;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(2, 0, 0);
  rig.switches[rig.topo.host_tor(src)]->add_ingress_stage(&stage);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  EXPECT_EQ(stage.eaten, 1);
  EXPECT_TRUE(rig.hosts[dst]->received.empty());
}

class RecordingEgress final : public Switch::EgressStage {
 public:
  void on_egress(const Packet& pkt, NodeId next_hop, Switch& sw) override {
    (void)pkt;
    (void)sw;
    next_hops.push_back(next_hop);
  }
  std::vector<NodeId> next_hops;
};

TEST(SwitchTest, EgressStagesObserveNextHop) {
  Rig rig;
  RecordingEgress egress;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(0, 0, 1);
  const NodeId tor = rig.topo.host_tor(src);
  rig.switches[tor]->add_egress_stage(&egress);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  ASSERT_EQ(egress.next_hops.size(), 1u);
  EXPECT_EQ(egress.next_hops[0], rig.topo.host_node(dst));
}

TEST(SwitchTest, ForwardCounterAdvances) {
  Rig rig;
  const HostId src = rig.topo.host_id(0, 0, 0);
  const HostId dst = rig.topo.host_id(0, 0, 1);
  const NodeId tor = rig.topo.host_tor(src);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  EXPECT_EQ(rig.switches[tor]->forwards(), 2u);
}

}  // namespace
}  // namespace netrs::net
