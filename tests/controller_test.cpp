// NetRS controller tests: statistics collection, RSP computation and
// deployment, and the §III-C exception handling (operator failure /
// overload -> Degraded Replica Selection).
#include "netrs/controller.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"
#include "rs/baselines.hpp"

namespace netrs::core {
namespace {

class ControllerRig : public ::testing::Test {
 protected:
  ControllerRig()
      : topo(4),
        fabric(sim, topo, net::FabricConfig{}),
        groups(topo, GroupGranularity::kRack) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    // 4 servers spread over pods, 6 clients elsewhere.
    server_hosts = {topo.host_id(0, 0, 0), topo.host_id(1, 0, 0),
                    topo.host_id(2, 1, 0), topo.host_id(3, 1, 1)};
    client_hosts = {topo.host_id(0, 0, 1), topo.host_id(0, 1, 0),
                    topo.host_id(1, 1, 0), topo.host_id(2, 0, 0),
                    topo.host_id(3, 0, 0), topo.host_id(1, 0, 1)};
    ring = std::make_unique<kv::ConsistentHashRing>(server_hosts, 3, 8);
    zipf = std::make_unique<sim::ZipfDistribution>(10000, 0.99);

    auto directory = std::make_shared<RsNodeDirectory>();
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      (*directory)[static_cast<RsNodeId>(sw + 1)] = sw;
    }
    auto bootstrap = std::make_shared<const GroupRidTable>(
        groups.group_count(), kRidIllegal);
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      operators.push_back(std::make_unique<NetRSOperator>(
          fabric, *switches[sw], static_cast<RsNodeId>(sw + 1),
          AcceleratorConfig{}, directory, ring->groups(),
          [sw] {
            return std::make_unique<rs::LeastOutstandingSelector>(
                sim::Rng(sw));
          },
          &groups, bootstrap));
    }

    kv::ServerConfig scfg;
    scfg.fluctuate = false;
    scfg.mean_service_time = sim::micros(500);
    for (net::HostId h : server_hosts) {
      servers.push_back(
          std::make_unique<kv::Server>(fabric, h, scfg, sim::Rng(h)));
    }
    kv::ClientConfig ccfg;
    ccfg.mode = kv::ClientMode::kNetRS;
    ccfg.arrival_rate = 2000.0;
    for (net::HostId h : client_hosts) {
      clients.push_back(std::make_unique<kv::Client>(
          fabric, h, ccfg, *ring, *zipf, sim::Rng(1000 + h)));
    }
  }

  Controller& make_controller(ControllerConfig cfg) {
    std::vector<NetRSOperator*> ptrs;
    for (auto& op : operators) ptrs.push_back(op.get());
    controller = std::make_unique<Controller>(sim, topo, groups,
                                              std::move(ptrs), cfg);
    return *controller;
  }

  void run_traffic(sim::Duration d) {
    for (auto& c : clients) c->start();
    sim.run_until(sim.now() + d);
    for (auto& c : clients) c->stop();
    sim.run_until(sim.now() + sim::millis(20));
  }

  std::uint64_t total_completed() const {
    std::uint64_t n = 0;
    for (const auto& c : clients) n += c->completed();
    return n;
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  TrafficGroups groups;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<std::unique_ptr<NetRSOperator>> operators;
  std::vector<net::HostId> server_hosts;
  std::vector<net::HostId> client_hosts;
  std::unique_ptr<kv::ConsistentHashRing> ring;
  std::unique_ptr<sim::ZipfDistribution> zipf;
  std::vector<std::unique_ptr<kv::Server>> servers;
  std::vector<std::unique_ptr<kv::Client>> clients;
  std::unique_ptr<Controller> controller;
};

TEST_F(ControllerRig, BootstrapInstallsTorPlanForAllGroups) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kIlp;
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  EXPECT_EQ(ctrl.plans_deployed(), 1u);
  EXPECT_EQ(ctrl.current_plan().method, "tor");
  // Every group got its rack's ToR.
  EXPECT_EQ(ctrl.current_plan().assignment.size(), groups.group_count());
  EXPECT_EQ(ctrl.active_rsnodes(), topo.racks());
}

TEST_F(ControllerRig, TorModeServesTrafficThroughTorRsnodes) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kTor;
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  run_traffic(sim::millis(300));
  EXPECT_GT(total_completed(), 1000u);
  // Selection happened on ToR operators only.
  for (auto& op : operators) {
    if (op->tier() != net::Tier::kTor) {
      EXPECT_EQ(op->selector_node().requests_selected(), 0u);
    }
  }
  EXPECT_EQ(ctrl.current_plan().method, "tor");
}

TEST_F(ControllerRig, IlpModeConsolidatesAfterStats) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kIlp;
  cfg.replan_interval = sim::millis(100);
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  run_traffic(sim::millis(500));
  EXPECT_GE(ctrl.plans_deployed(), 2u);
  EXPECT_NE(ctrl.current_plan().method, "tor");
  // Consolidation: fewer RSNodes than client racks.
  EXPECT_LT(ctrl.active_rsnodes(), 6);
  EXPECT_GE(ctrl.active_rsnodes(), 1);
  EXPECT_GT(total_completed(), 1000u);
  // All in-network selections are accounted for by active RSNodes.
  std::uint64_t selected = 0;
  for (auto& op : operators) {
    selected += op->selector_node().requests_selected();
  }
  EXPECT_GT(selected, 0u);
}

TEST_F(ControllerRig, BuildProblemReflectsObservedRates) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kIlp;
  cfg.replan_interval = sim::millis(100);
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  run_traffic(sim::millis(400));
  const PlacementProblem p = ctrl.build_problem();
  // Aggregate observed rate should be near the configured 6 * 2000 req/s.
  double total = 0.0;
  for (const auto& g : p.groups) total += g.total();
  EXPECT_NEAR(total, 12000.0, 6000.0);
  EXPECT_EQ(p.operators.size(), operators.size());
  EXPECT_GT(p.extra_hop_budget, 0.0);
}

TEST_F(ControllerRig, FailedOperatorDegradesItsGroupsImmediately) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kTor;
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  const auto plan_before = ctrl.current_plan();
  // Fail the ToR RSNode of the first client's rack.
  const net::NodeId tor = topo.host_tor(client_hosts[0]);
  const RsNodeId failed_rid = static_cast<RsNodeId>(tor + 1);
  ctrl.fail_operator(failed_rid);

  const auto& plan_after = ctrl.current_plan();
  EXPECT_LT(plan_after.assignment.size(), plan_before.assignment.size());
  EXPECT_FALSE(plan_after.drs_groups.empty());
  for (const auto& [g, rid] : plan_after.assignment) {
    (void)g;
    EXPECT_NE(rid, failed_rid);
  }

  // Traffic still completes (degraded requests go to client backups).
  run_traffic(sim::millis(200));
  EXPECT_GT(total_completed(), 500u);
  EXPECT_EQ(operators[tor]->selector_node().requests_selected(), 0u);
}

TEST_F(ControllerRig, RestoredOperatorReturnsOnNextPlan) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kTor;
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  const net::NodeId tor = topo.host_tor(client_hosts[0]);
  const RsNodeId rid = static_cast<RsNodeId>(tor + 1);
  ctrl.fail_operator(rid);
  ctrl.restore_operator(rid);
  ctrl.replan_now();
  bool used = false;
  for (const auto& [g, r] : ctrl.current_plan().assignment) {
    (void)g;
    used |= r == rid;
  }
  EXPECT_TRUE(used);
}

TEST_F(ControllerRig, OverloadTriggersDegradation) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kTor;
  cfg.replan_interval = sim::millis(50);
  cfg.overload_utilization = 0.0;  // any activity counts as overload
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  run_traffic(sim::millis(300));
  // Every active ToR RSNode saw traffic, so all were "overloaded" and
  // degraded; the plan must have shrunk.
  EXPECT_LT(static_cast<int>(ctrl.current_plan().assignment.size()),
            static_cast<int>(groups.group_count()));
  EXPECT_GT(total_completed(), 100u);  // DRS kept the system alive
}

TEST_F(ControllerRig, PlanChangeHookObservesDeployments) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kIlp;
  cfg.replan_interval = sim::millis(100);
  int calls = 0;
  int last_rsnodes = -1;
  cfg.on_plan_change = [&](const PlacementResult& plan) {
    ++calls;
    last_rsnodes = plan.rsnodes_used;
  };
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  run_traffic(sim::millis(400));
  EXPECT_GE(calls, 2);
  EXPECT_EQ(last_rsnodes, ctrl.active_rsnodes());
}

TEST_F(ControllerRig, RsnodeCountStableAcrossReplansUnderStableLoad) {
  ControllerConfig cfg;
  cfg.mode = PlanMode::kIlp;
  cfg.replan_interval = sim::millis(50);
  cfg.rsp_update_interval = sim::millis(100);
  Controller& ctrl = make_controller(cfg);
  ctrl.start();
  for (auto& c : clients) c->start();
  sim.run_until(sim::millis(300));
  const int count_early = ctrl.active_rsnodes();
  sim.run_until(sim::millis(800));
  const int count_late = ctrl.active_rsnodes();
  for (auto& c : clients) c->stop();
  sim.run_until(sim.now() + sim::millis(20));
  // Stable workload -> stable consolidated plan (within one RSNode).
  EXPECT_NEAR(count_early, count_late, 1.0);
}

}  // namespace
}  // namespace netrs::core
