#include "kv/client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/server.hpp"
#include "net/switch.hpp"
#include "netrs/packet_format.hpp"

namespace netrs::kv {
namespace {

// Small single-rack cluster: 3 servers + 1 client under one ToR, no NetRS.
class ClientRig : public ::testing::Test {
 protected:
  ClientRig() : topo(4), fabric(sim, topo, net::FabricConfig{}) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    server_hosts = {topo.host_id(0, 0, 0), topo.host_id(0, 0, 1),
                    topo.host_id(0, 1, 0)};
    ring = std::make_unique<ConsistentHashRing>(server_hosts, 3, 8);
    zipf = std::make_unique<sim::ZipfDistribution>(1000, 0.99);
  }

  void add_servers(ServerConfig cfg) {
    for (net::HostId h : server_hosts) {
      servers.push_back(std::make_unique<Server>(
          fabric, h, cfg, sim::Rng(100 + h)));
    }
  }

  Client& make_client(ClientConfig cfg, net::HostId h) {
    clients.push_back(std::make_unique<Client>(fabric, h, cfg, *ring, *zipf,
                                               sim::Rng(7)));
    return *clients.back();
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<net::HostId> server_hosts;
  std::unique_ptr<ConsistentHashRing> ring;
  std::unique_ptr<sim::ZipfDistribution> zipf;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<std::unique_ptr<Client>> clients;
};

TEST_F(ClientRig, OpenLoopIssuesAtConfiguredRate) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::micros(100);
  add_servers(scfg);
  ClientConfig ccfg;
  ccfg.mode = ClientMode::kClientSelect;
  ccfg.arrival_rate = 1000.0;  // 1 per ms
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  c.start();
  sim.run_until(sim::seconds(1));
  c.stop();
  sim.run_until(sim.now() + sim::millis(100));
  EXPECT_NEAR(static_cast<double>(c.issued()), 1000.0, 150.0);
  EXPECT_EQ(c.completed(), c.issued());
  EXPECT_EQ(c.in_flight(), 0u);
}

TEST_F(ClientRig, CompletionCallbackCarriesLatencyAndServer) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::millis(1);
  add_servers(scfg);
  ClientConfig ccfg;
  ccfg.arrival_rate = 200.0;
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  std::vector<Client::Completion> done;
  c.set_completion_callback(
      [&](const Client::Completion& comp) { done.push_back(comp); });
  c.start();
  sim.run_until(sim::millis(100));
  c.stop();
  sim.run_until(sim.now() + sim::millis(50));
  ASSERT_GT(done.size(), 5u);
  for (const auto& comp : done) {
    EXPECT_GT(comp.latency, 0);
    EXPECT_GT(comp.forwards, 0u);
    EXPECT_TRUE(std::find(server_hosts.begin(), server_hosts.end(),
                          comp.server) != server_hosts.end());
    EXPECT_FALSE(comp.redundant_used);
  }
}

TEST_F(ClientRig, NetRSModeEmitsBackupDestinationAndRgid) {
  // No servers: capture the raw request at the backup host instead.
  class Capture final : public net::Host {
   public:
    using Host::Host;
    void receive(net::Packet pkt, net::NodeId) override {
      got.push_back(std::move(pkt));
    }
    std::vector<net::Packet> got;
  };
  std::vector<std::unique_ptr<Capture>> captures;
  for (net::HostId h : server_hosts) {
    captures.push_back(std::make_unique<Capture>(fabric, h));
  }
  ClientConfig ccfg;
  ccfg.mode = ClientMode::kNetRS;
  ccfg.arrival_rate = 500.0;
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  c.start();
  sim.run_until(sim::millis(50));
  c.stop();
  sim.run_until(sim.now() + sim::millis(10));

  std::size_t total = 0;
  for (auto& cap : captures) {
    for (const auto& pkt : cap->got) {
      ++total;
      const auto rh = core::decode_request(pkt.payload);
      ASSERT_TRUE(rh.has_value());
      EXPECT_EQ(rh->mf, core::kMagicRequest);
      EXPECT_EQ(rh->rid, core::kRidUnset);  // assigned by the ToR, not us
      // The RGID must identify the replica group containing the backup.
      const auto reps = ring->replicas(rh->rgid);
      EXPECT_TRUE(std::find(reps.begin(), reps.end(), pkt.dst) != reps.end());
    }
  }
  EXPECT_GT(total, 10u);
}

TEST_F(ClientRig, RedundantRequestsFireAfterP95) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.parallelism = 1;
  scfg.mean_service_time = sim::millis(2);
  add_servers(scfg);
  ClientConfig ccfg;
  ccfg.arrival_rate = 400.0;  // saturating: queues form, latencies vary
  ccfg.redundancy.enabled = true;
  ccfg.redundancy.min_samples = 10;
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  std::uint64_t with_redundant = 0;
  c.set_completion_callback([&](const Client::Completion& comp) {
    if (comp.redundant_used) ++with_redundant;
  });
  c.start();
  sim.run_until(sim::seconds(2));
  c.stop();
  sim.run_until(sim.now() + sim::seconds(1));
  EXPECT_GT(c.redundant_sent(), 0u);
  EXPECT_GT(with_redundant, 0u);
  // Every request settles exactly once even with duplicates in flight.
  EXPECT_EQ(c.completed(), c.issued());
  EXPECT_EQ(c.in_flight(), 0u);
}

TEST_F(ClientRig, P95EstimateTracksCompletions) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::millis(1);
  add_servers(scfg);
  ClientConfig ccfg;
  ccfg.arrival_rate = 300.0;
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  c.start();
  sim.run_until(sim::seconds(1));
  c.stop();
  sim.run_until(sim.now() + sim::millis(100));
  // Latency floor is 4 host-link hops (120us+) plus ~1ms service.
  EXPECT_GT(c.p95_estimate_us(), 500.0);
  EXPECT_LT(c.p95_estimate_us(), 60000.0);
}

TEST_F(ClientRig, StopPreventsNewArrivals) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::micros(100);
  add_servers(scfg);
  ClientConfig ccfg;
  ccfg.arrival_rate = 1000.0;
  Client& c = make_client(ccfg, topo.host_id(0, 1, 1));
  c.start();
  sim.run_until(sim::millis(100));
  c.stop();
  const auto issued_at_stop = c.issued();
  sim.run();
  EXPECT_EQ(c.issued(), issued_at_stop);
}

}  // namespace
}  // namespace netrs::kv
