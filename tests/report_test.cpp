#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace netrs::harness {
namespace {

SweepReport tiny_report() {
  SweepReport rep;
  rep.title = "unit";
  rep.sweep_label = "x";
  rep.sweep_values = {"1", "2"};
  rep.schemes = {Scheme::kCliRS, Scheme::kNetRSIlp};
  for (int i = 0; i < 2; ++i) {
    rep.results.emplace_back();
    for (int j = 0; j < 2; ++j) {
      ExperimentResult r;
      r.scheme = rep.schemes[static_cast<std::size_t>(j)];
      for (int s = 0; s < 100; ++s) {
        r.latencies_ms.add(1.0 + i + j + s * 0.01);
      }
      r.completed = 100;
      r.rsnodes = j == 0 ? 500 : 7;
      r.plan_method = j == 0 ? "client" : "reduced-ilp";
      rep.results.back().push_back(std::move(r));
    }
  }
  return rep;
}

TEST(ReportTest, PrintDoesNotCrash) {
  print_report(tiny_report());  // smoke: formatting of all panels
}

TEST(ReportTest, CsvContainsEveryCell) {
  const std::string path = "/tmp/netrs_report_test.csv";
  std::remove(path.c_str());
  write_csv(tiny_report(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string csv = ss.str();
  // 2 sweeps x 2 schemes x 4 panels = 16 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 16);
  EXPECT_NE(csv.find("unit,1,CliRS,Avg,"), std::string::npos);
  EXPECT_NE(csv.find("NetRS-ILP,99.9th percentile"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, CsvAppends) {
  const std::string path = "/tmp/netrs_report_test2.csv";
  std::remove(path.c_str());
  write_csv(tiny_report(), path);
  write_csv(tiny_report(), path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string csv = ss.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 32);
  std::remove(path.c_str());
}

TEST(ReportTest, ExperimentResultAccessors) {
  ExperimentResult r;
  EXPECT_DOUBLE_EQ(r.mean_ms(), 0.0);  // empty-safe
  EXPECT_DOUBLE_EQ(r.percentile_ms(0.99), 0.0);
  r.latencies_ms.add(5.0);
  EXPECT_DOUBLE_EQ(r.mean_ms(), 5.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(0.5), 5.0);
}

}  // namespace
}  // namespace netrs::harness
