// Parameterized property sweeps over fat-tree arities: routing reachability
// and placement validity must hold for every supported k, not just the
// paper's k = 16.
#include <gtest/gtest.h>

#include <set>

#include "net/fat_tree.hpp"
#include "netrs/placement.hpp"
#include "sim/rng.hpp"

namespace netrs {
namespace {

class FatTreeArity : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeArity, StructureInvariants) {
  const int k = GetParam();
  net::FatTree t(k);
  EXPECT_EQ(t.host_count(), static_cast<std::uint32_t>(k * k * k / 4));
  EXPECT_EQ(t.core_count(), static_cast<std::uint32_t>(k * k / 4));
  // Every switch has exactly k links; every host exactly one.
  for (net::NodeId sw = 0; sw < t.switch_count(); ++sw) {
    EXPECT_EQ(t.neighbors(sw).size(), static_cast<std::size_t>(k));
  }
  for (net::HostId h = 0; h < t.host_count(); ++h) {
    EXPECT_EQ(t.neighbors(t.host_node(h)).size(), 1u);
  }
}

TEST_P(FatTreeArity, AllPairsRouteWithExpectedHops) {
  const int k = GetParam();
  net::FatTree t(k);
  sim::Rng rng(static_cast<std::uint64_t>(k));
  const int trials = 600;
  for (int i = 0; i < trials; ++i) {
    const auto src = static_cast<net::HostId>(rng.uniform(t.host_count()));
    const auto dst = static_cast<net::HostId>(rng.uniform(t.host_count()));
    if (src == dst) continue;
    net::NodeId cur = t.host_tor(src);
    int hops = 0;
    while (!t.is_host(cur)) {
      cur = t.next_hop_toward_host(cur, dst, rng.next_u64());
      ASSERT_LE(++hops, 6);
    }
    EXPECT_EQ(t.host_of(cur), dst);
    EXPECT_EQ(hops, t.default_forwards(src, dst));
  }
}

TEST_P(FatTreeArity, EcmpSpreadsAcrossUplinks) {
  const int k = GetParam();
  net::FatTree t(k);
  sim::Rng rng(99);
  // From one ToR toward another pod, the chosen agg must vary with the
  // flow hash (multipath, §II).
  std::set<net::NodeId> uplinks;
  const net::HostId dst = t.host_id(k - 1, 0, 0);
  for (int i = 0; i < 200; ++i) {
    uplinks.insert(t.next_hop_toward_host(t.tor_node(0, 0), dst,
                                          rng.next_u64()));
  }
  EXPECT_EQ(uplinks.size(), static_cast<std::size_t>(k / 2));
}

INSTANTIATE_TEST_SUITE_P(Arities, FatTreeArity, ::testing::Values(4, 6, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// Placement validity across arities and random demand mixes.
class PlacementArity : public ::testing::TestWithParam<int> {};

TEST_P(PlacementArity, RandomDemandsAlwaysYieldValidPlans) {
  const int k = GetParam();
  net::FatTree topo(k);
  sim::Rng rng(static_cast<std::uint64_t>(1000 + k));
  for (int trial = 0; trial < 6; ++trial) {
    core::PlacementProblem p;
    double total = 0.0;
    for (int r = 0; r < topo.racks(); ++r) {
      if (rng.bernoulli(0.2)) continue;  // some racks have no clients
      core::GroupDemand g;
      g.id = static_cast<core::GroupId>(r);
      g.pod = r / topo.tors_per_pod();
      g.rack = r % topo.tors_per_pod();
      const double load = 50.0 + 400.0 * rng.next_double();
      const double t2 = rng.next_double() * 0.1;
      const double t1 = rng.next_double() * 0.2;
      g.tier_traffic[2] = load * t2;
      g.tier_traffic[1] = load * t1;
      g.tier_traffic[0] = load * (1.0 - t1 - t2);
      total += load;
      p.groups.push_back(g);
    }
    core::RsNodeId id = 1;
    for (net::NodeId sw : topo.all_switches()) {
      core::OperatorSpec op;
      op.id = id++;
      op.sw = sw;
      const net::SwitchCoord c = topo.coord(sw);
      op.tier = c.tier;
      op.pod = c.pod;
      op.rack = c.idx;
      op.t_max = total * (0.1 + 0.4 * rng.next_double());
      op.available = rng.bernoulli(0.9);
      p.operators.push_back(op);
    }
    p.extra_hop_budget = total * rng.next_double();

    for (auto method : {core::PlacementMethod::kReducedIlp,
                        core::PlacementMethod::kGreedy}) {
      core::PlacementOptions opts;
      opts.method = method;
      const core::PlacementResult res = core::solve_placement(p, opts);
      EXPECT_TRUE(core::validate_placement(p, res))
          << "k=" << k << " trial=" << trial
          << " method=" << static_cast<int>(method);
      // Every group is either assigned or degraded.
      EXPECT_EQ(res.assignment.size() + res.drs_groups.size(),
                p.groups.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, PlacementArity, ::testing::Values(4, 6, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace netrs
