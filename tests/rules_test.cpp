// Unit tests for the Fig. 3 ingress pipeline (NetRSRules) with a synthetic
// directory — complementing the end-to-end pipeline tests with precise
// disposition checks.
#include "netrs/rules.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <variant>

#include "net/switch.hpp"

namespace netrs::core {
namespace {

class RulesRig : public ::testing::Test {
 protected:
  RulesRig()
      : topo(4),
        fabric(sim, topo, net::FabricConfig{}),
        groups(topo, GroupGranularity::kRack) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    directory = std::make_shared<RsNodeDirectory>();
    (*directory)[1] = topo.tor_node(0, 0);
    (*directory)[2] = topo.agg_node(0, 1);
    (*directory)[3] = topo.core_node(0, 0);
    // Stand-in accelerators so "forward to accelerator" has a real target.
    tor_accel_ = fabric.attach_auxiliary(&accel_sink_, topo.tor_node(0, 0));
    agg_accel_ = fabric.attach_auxiliary(&accel_sink_, topo.agg_node(0, 1));
  }

  struct SinkNode final : net::Node {
    void receive(net::Packet, net::NodeId) override { ++packets; }
    int packets = 0;
  };

  /// Builds rules for the ToR of pod 0 / rack 0, local RSNode id 1, with a
  /// uniform group table pointing at `rid`.
  std::unique_ptr<NetRSRules> tor_rules(RsNodeId rid) {
    auto rules = std::make_unique<NetRSRules>(1, tor_accel_, directory, topo);
    auto table = std::make_shared<GroupRidTable>(groups.group_count(), rid);
    rules->install_tor_tables(&groups, table);
    return rules;
  }

  net::Packet request(net::HostId src, net::HostId dst,
                      RsNodeId rid = kRidUnset) {
    RequestHeader rh;
    rh.mf = kMagicRequest;
    rh.rid = rid;
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.payload = encode_request(rh, {});
    return p;
  }

  net::Packet response(net::HostId src, net::HostId dst, RsNodeId rid) {
    ResponseHeader rh;
    rh.mf = kMagicResponse;
    rh.rid = rid;
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.payload = encode_response(rh, {});
    return p;
  }

  net::Switch& tor() { return *switches[topo.tor_node(0, 0)]; }

  SinkNode accel_sink_;
  net::NodeId tor_accel_ = net::kInvalidNode;
  net::NodeId agg_accel_ = net::kInvalidNode;

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  TrafficGroups groups;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::shared_ptr<RsNodeDirectory> directory;
};

TEST_F(RulesRig, TorAssignsRidFromGroupTable) {
  auto rules = tor_rules(/*rid=*/2);
  const net::HostId client = topo.host_id(0, 0, 0);
  net::Packet pkt = request(client, topo.host_id(1, 0, 0));
  const auto d = rules->on_ingress(pkt, topo.host_node(client), tor());
  // RSNode 2 is the agg: the packet is steered toward it.
  ASSERT_TRUE(std::holds_alternative<net::Switch::Steer>(d));
  EXPECT_EQ(std::get<net::Switch::Steer>(d).target_switch,
            topo.agg_node(0, 1));
  EXPECT_EQ(*peek_rid(pkt.payload), 2);
  EXPECT_EQ(rules->steered(), 1u);
}

TEST_F(RulesRig, IllegalRidTriggersDrsRelabel) {
  auto rules = tor_rules(kRidIllegal);
  const net::HostId client = topo.host_id(0, 0, 0);
  net::Packet pkt = request(client, topo.host_id(1, 0, 0));
  const auto d = rules->on_ingress(pkt, topo.host_node(client), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Continue>(d));
  EXPECT_EQ(*peek_magic(pkt.payload), magic_f(kMagicMonitor));
  EXPECT_EQ(rules->drs_labelled(), 1u);
}

TEST_F(RulesRig, UnknownRidDegradesInsteadOfBlackholing) {
  auto rules = tor_rules(/*rid=*/77);  // not in the directory
  const net::HostId client = topo.host_id(0, 0, 0);
  net::Packet pkt = request(client, topo.host_id(1, 0, 0));
  const auto d = rules->on_ingress(pkt, topo.host_node(client), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Continue>(d));
  EXPECT_EQ(*peek_magic(pkt.payload), magic_f(kMagicMonitor));
}

TEST_F(RulesRig, LocalRidRequestGoesToAccelerator) {
  auto rules = tor_rules(/*rid=*/1);  // this ToR is the RSNode
  const net::HostId client = topo.host_id(0, 0, 0);
  net::Packet pkt = request(client, topo.host_id(1, 0, 0));
  const auto d = rules->on_ingress(pkt, topo.host_node(client), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Consumed>(d));
  EXPECT_EQ(rules->to_accelerator(), 1u);
}

TEST_F(RulesRig, ResponseGetsSourceMarkerAndSteersToRsnode) {
  auto rules = tor_rules(/*rid=*/2);
  const net::HostId server = topo.host_id(0, 0, 1);
  net::Packet pkt = response(server, topo.host_id(1, 0, 0), /*rid=*/3);
  const auto d = rules->on_ingress(pkt, topo.host_node(server), tor());
  ASSERT_TRUE(std::holds_alternative<net::Switch::Steer>(d));
  EXPECT_EQ(std::get<net::Switch::Steer>(d).target_switch,
            topo.core_node(0, 0));
  const auto sm = peek_source_marker(pkt.payload);
  ASSERT_TRUE(sm.has_value());
  EXPECT_EQ(*sm, topo.marker(server));
}

TEST_F(RulesRig, LocalRidResponseClonedAndRelabelled) {
  auto rules = tor_rules(/*rid=*/1);
  const net::HostId server = topo.host_id(0, 0, 1);
  net::Packet pkt = response(server, topo.host_id(0, 0, 0), /*rid=*/1);
  const auto d = rules->on_ingress(pkt, topo.host_node(server), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Continue>(d));
  EXPECT_EQ(*peek_magic(pkt.payload), kMagicMonitor);
  EXPECT_EQ(rules->cloned(), 1u);
}

TEST_F(RulesRig, NonTorSwitchNeverTouchesGroupTables) {
  // Rules without ToR tables (an aggregation switch): a request arriving
  // with a foreign RID is steered; one with the local id is consumed.
  NetRSRules rules(2, agg_accel_, directory, topo);
  net::Switch& agg = *switches[topo.agg_node(0, 1)];
  net::Packet steer_me =
      request(topo.host_id(0, 0, 0), topo.host_id(1, 0, 0), /*rid=*/3);
  auto d = rules.on_ingress(steer_me, topo.tor_node(0, 0), agg);
  EXPECT_TRUE(std::holds_alternative<net::Switch::Steer>(d));

  net::Packet mine =
      request(topo.host_id(0, 0, 0), topo.host_id(1, 0, 0), /*rid=*/2);
  d = rules.on_ingress(mine, topo.tor_node(0, 0), agg);
  EXPECT_TRUE(std::holds_alternative<net::Switch::Consumed>(d));
}

TEST_F(RulesRig, PlainAndMonitorPacketsFallThrough) {
  auto rules = tor_rules(/*rid=*/2);
  net::Packet plain;
  plain.src = topo.host_id(0, 0, 0);
  plain.dst = topo.host_id(1, 0, 0);
  plain.payload.assign(32, std::byte{0xEE});
  auto d = rules->on_ingress(plain, topo.host_node(plain.src), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Continue>(d));

  net::Packet mon = request(topo.host_id(0, 0, 0), topo.host_id(1, 0, 0));
  set_magic(mon.payload, kMagicMonitor);
  d = rules->on_ingress(mon, topo.host_node(mon.src), tor());
  EXPECT_TRUE(std::holds_alternative<net::Switch::Continue>(d));
  EXPECT_EQ(rules->steered(), 0u);
  EXPECT_EQ(rules->to_accelerator(), 0u);
}

TEST_F(RulesRig, RidTableSwapTakesEffect) {
  auto rules = tor_rules(/*rid=*/2);
  auto table3 = std::make_shared<GroupRidTable>(groups.group_count(),
                                                RsNodeId{3});
  rules->update_rid_table(table3);
  const net::HostId client = topo.host_id(0, 0, 0);
  net::Packet pkt = request(client, topo.host_id(1, 0, 0));
  const auto d = rules->on_ingress(pkt, topo.host_node(client), tor());
  ASSERT_TRUE(std::holds_alternative<net::Switch::Steer>(d));
  EXPECT_EQ(std::get<net::Switch::Steer>(d).target_switch,
            topo.core_node(0, 0));
}

}  // namespace
}  // namespace netrs::core
