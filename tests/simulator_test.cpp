#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace netrs::sim {
namespace {

TEST(SimulatorTest, NowStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
}

TEST(SimulatorTest, RunAdvancesTimeThroughEvents) {
  Simulator s;
  std::vector<Time> seen;
  s.at(micros(5), [&] { seen.push_back(s.now()); });
  s.at(micros(1), [&] { seen.push_back(s.now()); });
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{micros(1), micros(5)}));
  EXPECT_EQ(s.now(), micros(5));
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator s;
  Time fired_at = -1;
  s.at(100, [&] { s.after(50, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.after(1, recurse);
  };
  s.after(1, recurse);
  EXPECT_EQ(s.run(), 10u);
  EXPECT_EQ(depth, 10);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    s.at(i * 10, [&] { ++fired; });
  }
  EXPECT_EQ(s.run_until(50), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending_events(), 5u);
  s.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilWithEmptyQueueAdvancesToDeadline) {
  Simulator s;
  s.run_until(1234);
  EXPECT_EQ(s.now(), 1234);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.at(1, [&] {
    ++fired;
    s.stop();
  });
  s.at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EveryRepeatsUntilFalse) {
  Simulator s;
  int ticks = 0;
  s.every(10, [&] { return ++ticks < 4; });
  s.run();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(s.now(), 40);
}

TEST(SimulatorTest, CancelPreventsCallback) {
  Simulator s;
  bool fired = false;
  const EventId id = s.after(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsFiredCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 7u);
}

TEST(SimulatorTest, SameInstantEventsFireInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.at(99, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace netrs::sim
