// Integration tests for the NetRS operator machinery of §IV: switch rules,
// accelerator, selector node, and monitor wired into a live fat-tree
// carrying real packets between a KV client host and KV servers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/app_message.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"
#include "netrs/controller.hpp"
#include "netrs/operator.hpp"
#include "rs/baselines.hpp"

namespace netrs::core {
namespace {

class ProbeHost final : public net::Host {
 public:
  using Host::Host;
  void receive(net::Packet pkt, net::NodeId from) override {
    (void)from;
    received.push_back(std::move(pkt));
    times.push_back(simulator().now());
  }
  void transmit(net::Packet pkt) { send(std::move(pkt)); }
  std::vector<net::Packet> received;
  std::vector<sim::Time> times;
};

class PipelineRig : public ::testing::Test {
 protected:
  PipelineRig()
      : topo(4),
        fabric(sim, topo, net::FabricConfig{}),
        groups(topo, GroupGranularity::kRack) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    // Servers in three different racks/pods so tier classification varies:
    // same rack as the client, same pod, different pod.
    client_host = topo.host_id(0, 0, 0);
    server_hosts = {topo.host_id(0, 0, 1),   // tier-2 wrt client
                    topo.host_id(0, 1, 0),   // tier-1
                    topo.host_id(2, 0, 0)};  // tier-0
    ring = std::make_unique<kv::ConsistentHashRing>(server_hosts, 3, 8);

    directory = std::make_shared<RsNodeDirectory>();
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      (*directory)[rid_of(sw)] = sw;
    }
    auto bootstrap =
        std::make_shared<const GroupRidTable>(groups.group_count(),
                                              kRidIllegal);
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      operators.push_back(std::make_unique<NetRSOperator>(
          fabric, *switches[sw], rid_of(sw), AcceleratorConfig{}, directory,
          ring->groups(),
          [this] {
            // Deterministic round-robin keeps assertions simple.
            return std::make_unique<rs::RoundRobinSelector>();
          },
          &groups, bootstrap));
    }

    kv::ServerConfig scfg;
    scfg.fluctuate = false;
    scfg.deterministic_service = true;  // timing assertions need this
    scfg.mean_service_time = sim::millis(1);
    for (net::HostId h : server_hosts) {
      servers.push_back(
          std::make_unique<kv::Server>(fabric, h, scfg, sim::Rng(h)));
    }
    client = std::make_unique<ProbeHost>(fabric, client_host);
  }

  static RsNodeId rid_of(net::NodeId sw) {
    return static_cast<RsNodeId>(sw + 1);
  }

  NetRSOperator& op_at(net::NodeId sw) { return *operators[sw]; }

  /// Installs "all client-side groups -> RSNode at `sw`" on every ToR.
  void set_rsnode(net::NodeId sw) {
    auto table = std::make_shared<GroupRidTable>(groups.group_count(),
                                                 rid_of(sw));
    for (auto& op : operators) {
      if (op->monitor() != nullptr) {
        op->rules().update_rid_table(table);
      }
    }
  }

  void set_all_drs() {
    auto table =
        std::make_shared<GroupRidTable>(groups.group_count(), kRidIllegal);
    for (auto& op : operators) {
      if (op->monitor() != nullptr) op->rules().update_rid_table(table);
    }
  }

  net::Packet make_request(std::uint64_t req_id, std::uint64_t key,
                           net::HostId backup) {
    RequestHeader rh;
    rh.mf = kMagicRequest;
    rh.rgid = ring->group_of_key(key);
    kv::AppRequest ar;
    ar.client_request_id = req_id;
    ar.key = key;
    net::Packet p;
    p.dst = backup;
    p.src_port = kv::kClientPort;
    p.dst_port = kv::kServerPort;
    p.payload = encode_request(rh, kv::encode_app_request(ar));
    return p;
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  TrafficGroups groups;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::shared_ptr<RsNodeDirectory> directory;
  std::vector<std::unique_ptr<NetRSOperator>> operators;
  std::vector<net::HostId> server_hosts;
  net::HostId client_host;
  std::unique_ptr<kv::ConsistentHashRing> ring;
  std::vector<std::unique_ptr<kv::Server>> servers;
  std::unique_ptr<ProbeHost> client;
};

TEST_F(PipelineRig, RequestSelectedAtTorRsnodeAndAnswered) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  client->transmit(make_request(1, 42, server_hosts[2]));
  sim.run();

  ASSERT_EQ(client->received.size(), 1u);
  NetRSOperator& rsnode = op_at(tor);
  EXPECT_EQ(rsnode.selector_node().requests_selected(), 1u);
  EXPECT_EQ(rsnode.selector_node().responses_absorbed(), 1u);
  EXPECT_EQ(rsnode.rules().to_accelerator(), 1u);
  EXPECT_EQ(rsnode.rules().cloned(), 1u);

  // The response reaching the client is relabelled Mmon by the RSNode.
  const auto resp = decode_response(client->received[0].payload);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify(resp->mf), PacketKind::kMonitorOnly);
  // Round-robin picked the first replica in the group's candidate list.
  EXPECT_EQ(client->received[0].src, ring->replicas_of_key(42)[0]);
}

TEST_F(PipelineRig, CoreRsnodeAddsPaperExtraHops) {
  // §III-B example: tier-2 traffic through a core RSNode takes 4 extra
  // forwards on the request path; responses detour symmetrically.
  const net::NodeId core = topo.core_node(0, 0);
  set_rsnode(core);
  // Key whose primary replica (round-robin pick) is the same-rack server.
  std::uint64_t key = 0;
  while (ring->replicas_of_key(key)[0] != server_hosts[0]) ++key;
  client->transmit(make_request(2, key, server_hosts[0]));
  sim.run();

  ASSERT_EQ(client->received.size(), 1u);
  // Same-rack default round trip: 1 + 1 forwards. Via the core RSNode:
  // 5 + 5 forwards.
  EXPECT_EQ(client->received[0].meta.forwards, 10u);
  EXPECT_EQ(op_at(core).selector_node().requests_selected(), 1u);
  EXPECT_EQ(op_at(core).selector_node().responses_absorbed(), 1u);
}

TEST_F(PipelineRig, ResponsesSteerBackThroughRequestRsnode) {
  const net::NodeId agg = topo.agg_node(0, 1);
  set_rsnode(agg);
  for (int i = 0; i < 5; ++i) {
    client->transmit(make_request(10 + i, 100 + i, server_hosts[1]));
  }
  sim.run();
  ASSERT_EQ(client->received.size(), 5u);
  EXPECT_EQ(op_at(agg).selector_node().requests_selected(), 5u);
  EXPECT_EQ(op_at(agg).selector_node().responses_absorbed(), 5u);
  // The selector measured a response time for every response (RV matched).
  EXPECT_EQ(op_at(agg).selector_node().rv_mismatches(), 0u);
}

TEST_F(PipelineRig, MonitorClassifiesTiersBySourceMarker) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  // One request per replica: with round-robin the three requests land on
  // the three distinct servers (tier 2, 1, 0 relative to the client).
  std::uint64_t key = 7;
  for (int i = 0; i < 3; ++i) {
    client->transmit(make_request(20 + i, key, server_hosts[0]));
  }
  sim.run();
  ASSERT_EQ(client->received.size(), 3u);

  Monitor* mon = op_at(tor).monitor();
  ASSERT_NE(mon, nullptr);
  EXPECT_EQ(mon->total_counted(), 3u);
  const auto counts = mon->snapshot_and_reset();
  const GroupId g = groups.group_of_host(client_host);
  ASSERT_TRUE(counts.contains(g));
  const auto& tiers = counts.at(g);
  // The replica set of `key` spans all three server hosts (RF = 3 of 3),
  // and round-robin visited each once.
  EXPECT_EQ(tiers[0], 1u);
  EXPECT_EQ(tiers[1], 1u);
  EXPECT_EQ(tiers[2], 1u);
  // Snapshot resets.
  EXPECT_TRUE(mon->snapshot_and_reset().empty());
}

TEST_F(PipelineRig, DrsRoutesToBackupWithoutSelector) {
  set_all_drs();
  const net::HostId backup = server_hosts[1];
  client->transmit(make_request(30, 99, backup));
  sim.run();

  ASSERT_EQ(client->received.size(), 1u);
  EXPECT_EQ(client->received[0].src, backup) << "DRS must use the backup";
  for (auto& op : operators) {
    EXPECT_EQ(op->selector_node().requests_selected(), 0u);
    EXPECT_EQ(op->selector_node().responses_absorbed(), 0u);
  }
  // The DRS response is still monitor-visible (f(Mmon) -> Mmon algebra).
  Monitor* mon = op_at(topo.host_tor(client_host)).monitor();
  EXPECT_EQ(mon->total_counted(), 1u);
  // Default path only: backup is tier-1 (same pod, other rack): 3+3
  // forwards round trip.
  EXPECT_EQ(client->received[0].meta.forwards, 6u);
}

TEST_F(PipelineRig, AcceleratorDelayOnRequestPath) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  // Pin selection to the same-rack server by using a single-replica view:
  // measure latency difference vs DRS to the same server.
  std::uint64_t key = 0;
  while (ring->replicas_of_key(key)[0] != server_hosts[0]) ++key;

  client->transmit(make_request(40, key, server_hosts[0]));
  sim.run();
  ASSERT_EQ(client->received.size(), 1u);
  const sim::Time with_netrs = client->times[0];

  // Same flow under DRS (no accelerator on the path).
  set_all_drs();
  const sim::Time start = sim.now();
  client->transmit(make_request(41, key, server_hosts[0]));
  sim.run();
  ASSERT_EQ(client->received.size(), 2u);
  const sim::Time with_drs = client->times[1] - start;

  // NetRS adds one accelerator visit on the request path: 2 * 1.25us link
  // + 5us service (the response clone is off the critical path).
  const sim::Duration delta = with_netrs - with_drs;
  EXPECT_GE(delta, sim::micros(7));
  EXPECT_LE(delta, sim::micros(9));
}

TEST_F(PipelineRig, AcceleratorQueuesWhenSaturated) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  // A burst of simultaneous requests serializes on the 1-core accelerator.
  for (int i = 0; i < 20; ++i) {
    client->transmit(make_request(50 + i, 7, server_hosts[0]));
  }
  sim.run();
  EXPECT_EQ(client->received.size(), 20u);
  Accelerator& accel = op_at(tor).accelerator();
  EXPECT_EQ(accel.processed(), 40u);  // 20 requests + 20 response clones
  EXPECT_EQ(accel.queue_length(), 0u);
  EXPECT_GT(accel.utilization(sim.now()), 0.0);
}

TEST_F(PipelineRig, ResetSelectorDropsLocalInformation) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  client->transmit(make_request(60, 5, server_hosts[0]));
  client->transmit(make_request(61, 5, server_hosts[0]));
  sim.run();
  ASSERT_EQ(client->received.size(), 2u);
  // Round-robin advanced to the 3rd candidate; reset rewinds it.
  op_at(tor).reset_selector();
  client->transmit(make_request(62, 5, server_hosts[0]));
  sim.run();
  ASSERT_EQ(client->received.size(), 3u);
  EXPECT_EQ(client->received[2].src, ring->replicas_of_key(5)[0]);
}

TEST_F(PipelineRig, NonNetRSTrafficPassesUntouched) {
  const net::NodeId tor = topo.host_tor(client_host);
  set_rsnode(tor);
  net::Packet plain;
  plain.dst = server_hosts[2];
  plain.src_port = 1234;
  plain.dst_port = 4321;
  plain.payload.assign(64, std::byte{0});  // magic field reads as 0
  client->transmit(std::move(plain));
  sim.run_until(sim::millis(5));
  // The KV server asserts on decode in debug builds; instead verify no
  // operator consumed or steered it.
  for (auto& op : operators) {
    EXPECT_EQ(op->rules().to_accelerator(), 0u);
    EXPECT_EQ(op->rules().steered(), 0u);
  }
}

}  // namespace
}  // namespace netrs::core
