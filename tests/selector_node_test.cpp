// Unit tests for the NetRS selector (§IV-C) in isolation: RGID database
// lookups, packet rewriting, RV-based response-time measurement (including
// slot reuse), and state reset.
#include "netrs/selector_node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "rs/baselines.hpp"
#include "rs/selector.hpp"

namespace netrs::core {
namespace {

// A selector that records feedbacks and always picks the first candidate.
class RecordingSelector final : public rs::ReplicaSelector {
 public:
  net::HostId select(std::span<const net::HostId> candidates) override {
    ++selects;
    return candidates[0];
  }
  void on_send(net::HostId) override { ++sends; }
  void on_response(const rs::Feedback& fb) override {
    feedbacks.push_back(fb);
  }
  [[nodiscard]] std::string name() const override { return "recording"; }

  int selects = 0;
  int sends = 0;
  std::vector<rs::Feedback> feedbacks;
};

class SelectorNodeTest : public ::testing::Test {
 protected:
  SelectorNodeTest() {
    db.push_back({10, 20, 30});  // RGID 0
    db.push_back({40, 50});      // RGID 1
    auto sel = std::make_unique<RecordingSelector>();
    recorder = sel.get();
    node = std::make_unique<SelectorNode>(sim, db, std::move(sel));
  }

  net::Packet request(ReplicaGroupId rgid, net::HostId backup = 99) {
    RequestHeader rh;
    rh.mf = kMagicRequest;
    rh.rgid = rgid;
    net::Packet p;
    p.src = 7;
    p.dst = backup;
    p.payload = encode_request(rh, {});
    return p;
  }

  net::Packet response(net::HostId server, std::uint16_t rv,
                       std::uint32_t queue = 3) {
    ResponseHeader rh;
    rh.mf = kMagicResponse;
    rh.rv = rv;
    rh.status.queue_size = queue;
    rh.status.service_time_ns = 4'000'000;
    net::Packet p;
    p.src = server;
    p.dst = 7;
    p.payload = encode_response(rh, {});
    return p;
  }

  sim::Simulator sim;
  ReplicaDatabase db;
  RecordingSelector* recorder = nullptr;
  std::unique_ptr<SelectorNode> node;
};

TEST_F(SelectorNodeTest, RequestRewrittenToSelectedReplica) {
  auto out = node->process(request(0));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->dst, 10u);  // first candidate of RGID 0
  EXPECT_EQ(recorder->selects, 1);
  EXPECT_EQ(recorder->sends, 1);
  const auto rh = decode_request(out->payload);
  ASSERT_TRUE(rh.has_value());
  EXPECT_EQ(rh->mf, magic_f(kMagicResponse));
  EXPECT_NE(rh->rv, 0);  // a fresh tag was assigned
  EXPECT_EQ(node->requests_selected(), 1u);
}

TEST_F(SelectorNodeTest, ResponseMeasuredViaRvTag) {
  auto out = node->process(request(0));
  const auto rv = decode_request(out->payload)->rv;
  sim.at(sim::millis(3), [] {});
  sim.run();  // advance time to 3ms

  node->process(response(10, rv));
  ASSERT_EQ(recorder->feedbacks.size(), 1u);
  const rs::Feedback& fb = recorder->feedbacks[0];
  EXPECT_TRUE(fb.has_response_time);
  EXPECT_EQ(fb.response_time, sim::millis(3));
  EXPECT_EQ(fb.server, 10u);
  EXPECT_EQ(fb.queue_size, 3u);
  EXPECT_EQ(fb.service_time, sim::Duration{4'000'000});
  EXPECT_EQ(node->rv_mismatches(), 0u);
}

TEST_F(SelectorNodeTest, ResponseClonesAreAbsorbed) {
  auto out = node->process(response(10, 123));
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(node->responses_absorbed(), 1u);
}

TEST_F(SelectorNodeTest, MismatchedRvStillUpdatesStatus) {
  // A response whose RV slot was never filled (or was reused by another
  // server) must not fabricate a response time.
  node->process(response(20, 999));
  ASSERT_EQ(recorder->feedbacks.size(), 1u);
  EXPECT_FALSE(recorder->feedbacks[0].has_response_time);
  EXPECT_EQ(recorder->feedbacks[0].queue_size, 3u);
  EXPECT_EQ(node->rv_mismatches(), 1u);
}

TEST_F(SelectorNodeTest, RvSlotServerMismatchDetected) {
  auto out = node->process(request(0));  // selects server 10
  const auto rv = decode_request(out->payload)->rv;
  // A response with the right RV but from the wrong server (slot reuse).
  node->process(response(30, rv));
  ASSERT_EQ(recorder->feedbacks.size(), 1u);
  EXPECT_FALSE(recorder->feedbacks[0].has_response_time);
  EXPECT_EQ(node->rv_mismatches(), 1u);
}

TEST_F(SelectorNodeTest, RvSlotConsumedOnce) {
  auto out = node->process(request(0));
  const auto rv = decode_request(out->payload)->rv;
  node->process(response(10, rv));
  node->process(response(10, rv));  // duplicate: slot already invalid
  ASSERT_EQ(recorder->feedbacks.size(), 2u);
  EXPECT_TRUE(recorder->feedbacks[0].has_response_time);
  EXPECT_FALSE(recorder->feedbacks[1].has_response_time);
}

TEST_F(SelectorNodeTest, UnknownRgidDegradesToBackup) {
  auto out = node->process(request(/*rgid=*/57, /*backup=*/42));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->dst, 42u) << "must keep the client's backup destination";
  const auto rh = decode_request(out->payload);
  // Relabelled so downstream devices treat it as plain monitor traffic.
  EXPECT_EQ(rh->mf, magic_f(kMagicMonitor));
  EXPECT_EQ(recorder->selects, 0);
  EXPECT_EQ(node->requests_selected(), 0u);
}

TEST_F(SelectorNodeTest, NonNetRSPacketBouncesBack) {
  net::Packet plain;
  plain.src = 1;
  plain.dst = 2;
  plain.payload.assign(32, std::byte{0});
  auto out = node->process(plain);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->dst, 2u);
}

TEST_F(SelectorNodeTest, ResetDropsPendingAndSelectorState) {
  auto out = node->process(request(0));
  const auto rv = decode_request(out->payload)->rv;
  auto fresh = std::make_unique<RecordingSelector>();
  RecordingSelector* fresh_ptr = fresh.get();
  node->reset_selector(std::move(fresh));
  // The old RV slot must be gone: the response measures nothing.
  node->process(response(10, rv));
  ASSERT_EQ(fresh_ptr->feedbacks.size(), 1u);
  EXPECT_FALSE(fresh_ptr->feedbacks[0].has_response_time);
}

TEST_F(SelectorNodeTest, RvTagsWrapWithoutCollision) {
  // Issue > 65536 requests: RV wraps; every new slot overwrites an old
  // one and the bookkeeping never crashes.
  for (int i = 0; i < 70000; ++i) {
    auto out = node->process(request(1));
    ASSERT_TRUE(out.has_value());
  }
  EXPECT_EQ(node->requests_selected(), 70000u);
}

}  // namespace
}  // namespace netrs::core
