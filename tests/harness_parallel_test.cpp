// Thread-pool unit tests plus the harness determinism contract: any
// --jobs value must produce bit-identical ExperimentResult statistics,
// because each repeat owns its simulation, seeds derive from the repeat
// index, and merge order is fixed.
#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "harness/experiment.hpp"

namespace netrs::harness {
namespace {

TEST(ResolveJobsTest, PositivePassesThroughAutoFallsBackToHardware) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-2), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ParallelForTest, VisitsEachIndexExactlyOnce) {
  const std::size_t n = 257;
  std::vector<int> visits(n, 0);
  parallel_for(4, n, [&visits](std::size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
            static_cast<int>(n));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i], 1) << i;
}

TEST(ParallelForTest, SingleJobRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(1, 5, [&order](std::size_t i) { order.push_back(i); });
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(4, 16,
                            [](std::size_t i) {
                              if (i % 2 == 0) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 2000;
  cfg.repeats = 4;
  cfg.seed = 11;
  return cfg;
}

class JobsDeterminismTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(JobsDeterminismTest, SerialAndParallelRunsAreBitIdentical) {
  ExperimentConfig cfg = small_config();
  cfg.jobs = 1;
  const ExperimentResult serial = run_experiment(GetParam(), cfg);
  cfg.jobs = 4;
  const ExperimentResult parallel = run_experiment(GetParam(), cfg);

  // Full latency digest, not just summary stats: the merged (finalized)
  // sample vectors must match element-wise.
  ASSERT_EQ(serial.latencies_ms.count(), parallel.latencies_ms.count());
  EXPECT_EQ(serial.latencies_ms.samples(), parallel.latencies_ms.samples());
  EXPECT_DOUBLE_EQ(serial.mean_ms(), parallel.mean_ms());
  EXPECT_DOUBLE_EQ(serial.percentile_ms(0.50), parallel.percentile_ms(0.50));
  EXPECT_DOUBLE_EQ(serial.percentile_ms(0.99), parallel.percentile_ms(0.99));

  EXPECT_EQ(serial.issued, parallel.issued);
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.redundant, parallel.redundant);
  EXPECT_EQ(serial.cancels, parallel.cancels);
  EXPECT_DOUBLE_EQ(serial.avg_forwards, parallel.avg_forwards);
  EXPECT_DOUBLE_EQ(serial.wire_bytes_per_request,
                   parallel.wire_bytes_per_request);
  EXPECT_DOUBLE_EQ(serial.load_oscillation, parallel.load_oscillation);
  EXPECT_EQ(serial.rsnodes, parallel.rsnodes);
  EXPECT_EQ(serial.plan_method, parallel.plan_method);
  EXPECT_EQ(serial.plans_deployed, parallel.plans_deployed);
}

INSTANTIATE_TEST_SUITE_P(SchemesAcrossStack, JobsDeterminismTest,
                         ::testing::Values(Scheme::kCliRS,
                                           Scheme::kCliRSR95,
                                           Scheme::kNetRSIlp),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(JobsAutoTest, ZeroJobsMatchesSerial) {
  ExperimentConfig cfg = small_config();
  cfg.repeats = 2;
  cfg.jobs = 0;  // auto: hardware concurrency
  const ExperimentResult automatic = run_experiment(Scheme::kCliRS, cfg);
  cfg.jobs = 1;
  const ExperimentResult serial = run_experiment(Scheme::kCliRS, cfg);
  EXPECT_EQ(automatic.latencies_ms.samples(), serial.latencies_ms.samples());
  EXPECT_EQ(automatic.issued, serial.issued);
}

}  // namespace
}  // namespace netrs::harness
