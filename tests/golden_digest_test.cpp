// Golden-digest determinism guard: runs a small mixed CliRS/NetRS
// experiment matrix and compares a digest of each scheme's full result
// (merged latency samples plus every summary statistic) against recorded
// values. Any refactor of the simulation hot path — event queue, packet
// buffers, scheduling — that silently changes behavior trips this test,
// because the digest covers the bit pattern of every measured latency.
//
// The recorded digests were produced by this test itself (run with
// NETRS_PRINT_DIGESTS=1 to reprint them). They are a *behavioral contract*:
// update them only for a change that intentionally alters simulation
// results, and say so in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"

namespace netrs::harness {
namespace {

// FNV-1a over raw bytes; doubles are hashed by bit pattern, so any change
// in any sample or statistic changes the digest.
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

ExperimentConfig digest_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 2000;
  cfg.repeats = 2;
  cfg.seed = 17;
  cfg.jobs = 1;
  return cfg;
}

std::uint64_t result_digest(const ExperimentResult& res) {
  Digest d;
  d.add_u64(res.latencies_ms.count());
  for (double s : res.latencies_ms.samples()) d.add_double(s);
  d.add_u64(res.issued);
  d.add_u64(res.completed);
  d.add_u64(res.redundant);
  d.add_u64(res.cancels);
  d.add_double(res.avg_forwards);
  d.add_double(res.wire_bytes_per_request);
  d.add_double(res.load_oscillation);
  d.add_u64(static_cast<std::uint64_t>(res.rsnodes));
  d.add_bytes(res.plan_method.data(), res.plan_method.size());
  d.add_u64(static_cast<std::uint64_t>(res.plans_deployed));
  d.add_u64(res.drs_groups);
  return d.value();
}

struct GoldenCase {
  Scheme scheme;
  std::uint64_t expected;
};

// Recorded from the seed implementation (see file comment).
//
// NetRS-ILP was re-recorded when Controller::rates_ switched from
// unordered_map to an ordered map (sorted GroupId order): build_problem
// iterates rates_, so the ILP's variable order — and with it tie-breaking
// among equal-cost placements — previously depended on hash layout. The new
// digest is the deterministic-order plan; CliRS/CliRS-R95C/NetRS-ToR never
// consult the ILP and were unaffected.
constexpr GoldenCase kGolden[] = {
    {Scheme::kCliRS, 0x22129A79E79D7970ULL},
    {Scheme::kCliRSR95Cancel, 0x0891AE823F6B4F89ULL},
    {Scheme::kNetRSToR, 0x3A2BD8D30D7BB217ULL},
    {Scheme::kNetRSIlp, 0xE5DF15E64FB0AFFBULL},
};

class GoldenDigestTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenDigestTest, MatchesRecordedDigestAtAnyJobsValue) {
  const GoldenCase gc = GetParam();
  ExperimentConfig cfg = digest_config();
  const ExperimentResult serial = run_experiment(gc.scheme, cfg);
  const std::uint64_t serial_digest = result_digest(serial);

  cfg.jobs = 4;
  const ExperimentResult parallel = run_experiment(gc.scheme, cfg);
  const std::uint64_t parallel_digest = result_digest(parallel);

  if (std::getenv("NETRS_PRINT_DIGESTS") != nullptr) {
    std::printf("golden digest: scheme=%s 0x%016llX\n",
                scheme_name(gc.scheme),
                static_cast<unsigned long long>(serial_digest));
  }
  EXPECT_EQ(serial_digest, parallel_digest)
      << "jobs=1 vs jobs=4 diverged for " << scheme_name(gc.scheme);
  EXPECT_EQ(serial_digest, gc.expected)
      << "behavior drift for " << scheme_name(gc.scheme)
      << " — if intentional, re-record with NETRS_PRINT_DIGESTS=1";
}

INSTANTIATE_TEST_SUITE_P(
    MixedSchemes, GoldenDigestTest, ::testing::ValuesIn(kGolden),
    [](const auto& info) {
      std::string n = scheme_name(info.param.scheme);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace netrs::harness
