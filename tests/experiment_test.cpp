// Harness-level integration tests: the full experiment pipeline at small
// scale, for every scheme, including determinism and the shared-accelerator
// deployment.
#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace netrs::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 4000;
  cfg.repeats = 1;
  cfg.seed = 7;
  return cfg;
}

class SchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeTest, CompletesAllTrafficAndMeasures) {
  const ExperimentConfig cfg = small_config();
  const ExperimentResult res = run_experiment(GetParam(), cfg);
  EXPECT_EQ(res.issued, res.completed) << "requests lost";
  EXPECT_GT(res.latencies_ms.count(), cfg.total_requests / 2);
  EXPECT_GT(res.mean_ms(), 0.1);   // at least the network floor
  EXPECT_LT(res.mean_ms(), 100.0);  // and sane
  EXPECT_GE(res.percentile_ms(0.99), res.percentile_ms(0.5));
  EXPECT_GT(res.avg_forwards, 1.0);
  EXPECT_GT(res.wire_bytes_per_request, 1000.0);  // ~1KB values dominate
  if (is_netrs(GetParam())) {
    EXPECT_GT(res.rsnodes, 0);
    EXPECT_LE(res.rsnodes, 8 + 16);  // k=4: all racks at most
    EXPECT_GE(res.plans_deployed, 1);
  } else {
    EXPECT_EQ(res.rsnodes, cfg.num_clients);
    EXPECT_EQ(res.plan_method, "client");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTest,
    ::testing::Values(Scheme::kCliRS, Scheme::kCliRSR95,
                      Scheme::kCliRSR95Cancel, Scheme::kNetRSToR,
                      Scheme::kNetRSIlp),
    [](const auto& info) {
      std::string n = scheme_name(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(ExperimentTest, DeterministicForEqualSeeds) {
  const ExperimentConfig cfg = small_config();
  const ExperimentResult a = run_experiment(Scheme::kNetRSIlp, cfg);
  const ExperimentResult b = run_experiment(Scheme::kNetRSIlp, cfg);
  ASSERT_EQ(a.latencies_ms.count(), b.latencies_ms.count());
  EXPECT_DOUBLE_EQ(a.mean_ms(), b.mean_ms());
  EXPECT_DOUBLE_EQ(a.percentile_ms(0.999), b.percentile_ms(0.999));
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.rsnodes, b.rsnodes);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  ExperimentConfig cfg = small_config();
  const ExperimentResult a = run_experiment(Scheme::kCliRS, cfg);
  cfg.seed = 8;
  const ExperimentResult b = run_experiment(Scheme::kCliRS, cfg);
  EXPECT_NE(a.mean_ms(), b.mean_ms());
}

TEST(ExperimentTest, RepeatsMergeSamples) {
  ExperimentConfig cfg = small_config();
  cfg.repeats = 2;
  const ExperimentResult res = run_experiment(Scheme::kCliRS, cfg);
  cfg.repeats = 1;
  const ExperimentResult one = run_experiment(Scheme::kCliRS, cfg);
  EXPECT_GT(res.latencies_ms.count(), one.latencies_ms.count() * 3 / 2);
}

TEST(ExperimentTest, RedundancySchemesSendDuplicates) {
  ExperimentConfig cfg = small_config();
  cfg.total_requests = 8000;  // enough for the p95 estimator to warm up
  const ExperimentResult r95 = run_experiment(Scheme::kCliRSR95, cfg);
  EXPECT_GT(r95.redundant, 0u);
  EXPECT_EQ(r95.cancels, 0u);
  const ExperimentResult r95c = run_experiment(Scheme::kCliRSR95Cancel, cfg);
  EXPECT_GT(r95c.redundant, 0u);
  EXPECT_GT(r95c.cancels, 0u);
}

TEST(ExperimentTest, DemandSkewConcentratesLoadWithoutLosses) {
  ExperimentConfig cfg = small_config();
  cfg.demand_skew = 0.9;
  const ExperimentResult res = run_experiment(Scheme::kNetRSIlp, cfg);
  EXPECT_EQ(res.issued, res.completed);
  EXPECT_GT(res.latencies_ms.count(), 1000u);
}

TEST(ExperimentTest, SharedCoreAcceleratorsWork) {
  ExperimentConfig cfg = small_config();
  cfg.share_core_accelerators = true;
  const ExperimentResult res = run_experiment(Scheme::kNetRSIlp, cfg);
  EXPECT_EQ(res.issued, res.completed);
  EXPECT_GT(res.latencies_ms.count(), 1000u);
  EXPECT_GT(res.rsnodes, 0);
}

TEST(ExperimentTest, NetRSIlpConsolidatesVsToR) {
  ExperimentConfig cfg = small_config();
  cfg.num_clients = 10;
  const ExperimentResult tor = run_experiment(Scheme::kNetRSToR, cfg);
  const ExperimentResult ilp = run_experiment(Scheme::kNetRSIlp, cfg);
  EXPECT_LT(ilp.rsnodes, tor.rsnodes);
}

TEST(ExperimentTest, UtilizationScalesAggregateRate) {
  ExperimentConfig cfg = small_config();
  cfg.utilization = 0.3;
  const double low = cfg.aggregate_rate();
  cfg.utilization = 0.9;
  const double high = cfg.aggregate_rate();
  EXPECT_NEAR(high / low, 3.0, 1e-9);
  // tkv * A / (Ns * Np) must recover the utilization.
  EXPECT_NEAR(sim::to_seconds(cfg.mean_service_time) * high /
                  (cfg.num_servers * cfg.server_parallelism),
              0.9, 1e-9);
}

TEST(ExperimentTest, AlternativeSelectorAlgorithmsRun) {
  ExperimentConfig cfg = small_config();
  cfg.total_requests = 2000;
  for (const char* algo : {"least-outstanding", "two-choices", "random"}) {
    cfg.selector.algorithm = algo;
    const ExperimentResult res = run_experiment(Scheme::kNetRSIlp, cfg);
    EXPECT_EQ(res.issued, res.completed) << algo;
  }
}

}  // namespace
}  // namespace netrs::harness
