#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace netrs::sim {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(TimeTest, ConstructorsMatchConstants) {
  EXPECT_EQ(micros(1), kMicrosecond);
  EXPECT_EQ(millis(1), kMillisecond);
  EXPECT_EQ(seconds(1), kSecond);
  EXPECT_EQ(nanos(42), 42);
}

TEST(TimeTest, FractionalConstruction) {
  EXPECT_EQ(micros(2.5), 2500);
  EXPECT_EQ(micros(1.25), 1250);
  EXPECT_EQ(millis(0.1), 100 * kMicrosecond);
  EXPECT_EQ(seconds(0.001), kMillisecond);
}

TEST(TimeTest, ConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(to_micros(micros(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(millis(4)), 4.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(micros(1500)), 1.5);
}

TEST(TimeTest, PaperParametersAreRepresentable) {
  // The smallest paper timescale (accelerator RTT 2.5us) and the largest
  // (multi-second runs) both fit integer nanoseconds.
  EXPECT_EQ(micros(2.5) / 2, nanos(1250));
  EXPECT_GT(seconds(3600), 0);
}

}  // namespace
}  // namespace netrs::sim
