// Shard-parallel observability contract (DESIGN.md §8.6): every obs
// output — trace JSON, metrics CSV, attribution CSV, decision CSV — must
// be byte-identical at any --shards x --jobs combination, and attaching
// the sharded observer lanes must not perturb simulation results.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace netrs::harness {
namespace {

// Same digest as golden_digest_test.cpp: FNV-1a over every latency
// sample's bit pattern plus all summary statistics.
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

std::uint64_t result_digest(const ExperimentResult& res) {
  Digest d;
  d.add_u64(res.latencies_ms.count());
  for (double s : res.latencies_ms.samples()) d.add_double(s);
  d.add_u64(res.issued);
  d.add_u64(res.completed);
  d.add_u64(res.redundant);
  d.add_u64(res.cancels);
  d.add_double(res.avg_forwards);
  d.add_double(res.wire_bytes_per_request);
  d.add_double(res.load_oscillation);
  return d.value();
}

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 1500;
  cfg.repeats = 2;
  cfg.seed = 17;
  cfg.jobs = 1;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ObsFiles {
  std::string trace;
  std::string metrics;
  std::string attribution;
  std::string decisions;
};

// Runs `scheme` with all four obs outputs enabled at the given shard/job
// count and slurps the files back.
ObsFiles run_with_obs(Scheme scheme, const std::string& tag, int shards,
                      int jobs, std::uint64_t* digest = nullptr) {
  ExperimentConfig cfg = small_config();
  cfg.shards = shards;
  cfg.jobs = jobs;
  const std::string base = ::testing::TempDir() + "obs_shard_" + tag + "_s" +
                           std::to_string(shards) + "_j" +
                           std::to_string(jobs);
  cfg.obs.trace_path = base + ".json";
  cfg.obs.metrics_path = base + "_metrics.csv";
  cfg.obs.attribution_path = base + "_attr.csv";
  cfg.obs.decision_path = base + "_dec.csv";
  const ExperimentResult res = run_experiment(scheme, cfg);
  if (digest != nullptr) *digest = result_digest(res);
  ObsFiles f;
  f.trace = slurp(cfg.obs.trace_path);
  f.metrics = slurp(cfg.obs.metrics_path);
  f.attribution = slurp(cfg.obs.attribution_path);
  f.decisions = slurp(cfg.obs.decision_path);
  EXPECT_FALSE(f.trace.empty());
  EXPECT_FALSE(f.metrics.empty());
  EXPECT_FALSE(f.attribution.empty());
  EXPECT_FALSE(f.decisions.empty());
  return f;
}

void expect_identical(const ObsFiles& base, const ObsFiles& other,
                      const std::string& what) {
  EXPECT_EQ(base.trace, other.trace) << "trace JSON differs: " << what;
  EXPECT_EQ(base.metrics, other.metrics) << "metrics CSV differs: " << what;
  EXPECT_EQ(base.attribution, other.attribution)
      << "attribution CSV differs: " << what;
  EXPECT_EQ(base.decisions, other.decisions)
      << "decision CSV differs: " << what;
}

void check_scheme(Scheme scheme, const std::string& tag) {
  std::uint64_t baseline_digest = 0;
  const ObsFiles baseline = run_with_obs(scheme, tag, 1, 1, &baseline_digest);
  const std::vector<std::pair<int, int>> combos = {
      {2, 1}, {4, 1}, {1, 4}, {2, 4}, {4, 4}};
  for (const auto& [shards, jobs] : combos) {
    std::uint64_t d = 0;
    const ObsFiles f = run_with_obs(scheme, tag, shards, jobs, &d);
    const std::string what = tag + " shards=" + std::to_string(shards) +
                             " jobs=" + std::to_string(jobs);
    EXPECT_EQ(baseline_digest, d) << "result digest differs: " << what;
    expect_identical(baseline, f, what);
  }
}

TEST(ObsShardTest, NetRSIlpOutputsByteIdenticalAcrossShardsAndJobs) {
  check_scheme(Scheme::kNetRSIlp, "ilp");
}

TEST(ObsShardTest, NetRSToROutputsByteIdenticalAcrossShardsAndJobs) {
  check_scheme(Scheme::kNetRSToR, "tor");
}

TEST(ObsShardTest, ShardedObserversDoNotPerturbResults) {
  // Golden-digest invariance: the sharded run must produce the same
  // latency samples with and without the observer lanes attached.
  ExperimentConfig plain = small_config();
  plain.shards = 4;
  const std::uint64_t off =
      result_digest(run_experiment(Scheme::kNetRSIlp, plain));

  std::uint64_t on = 0;
  run_with_obs(Scheme::kNetRSIlp, "perturb", 4, 1, &on);
  EXPECT_EQ(off, on)
      << "attaching sharded observers changed simulation behavior";
}

TEST(ObsShardTest, ResultReportsPerShardEventCounts) {
  ExperimentConfig cfg = small_config();
  cfg.shards = 4;
  const ExperimentResult res = run_experiment(Scheme::kNetRSToR, cfg);
  ASSERT_EQ(res.events_per_shard.size(), 4u);
  std::uint64_t total = 0;
  for (std::uint64_t e : res.events_per_shard) {
    EXPECT_GT(e, 0u);
    total += e;
  }
  EXPECT_GT(total, res.completed);
}

TEST(ObsShardTest, ShardTelemetryOptInIsPopulatedAndDoesNotPerturb) {
  ExperimentConfig plain = small_config();
  plain.shards = 4;
  const std::uint64_t off =
      result_digest(run_experiment(Scheme::kNetRSIlp, plain));

  ExperimentConfig cfg = plain;
  cfg.shard_telemetry_path =
      ::testing::TempDir() + "obs_shard_telemetry.csv";
  const ExperimentResult res = run_experiment(Scheme::kNetRSIlp, cfg);
  EXPECT_EQ(off, result_digest(res))
      << "enabling shard telemetry changed simulation behavior";

  ASSERT_EQ(res.shard_telemetry.size(), 2u);  // one snapshot per repeat
  for (const sim::ShardTelemetry& t : res.shard_telemetry) {
    ASSERT_EQ(t.lanes.size(), 4u);
    std::uint64_t events = 0;
    for (const auto& lane : t.lanes) events += lane.events;
    EXPECT_GT(events, 0u);
  }

  const std::string csv = slurp(cfg.shard_telemetry_path);
  EXPECT_EQ(csv.rfind("repeat,shard,bucket_start_us,windows,events,"
                      "advance_ns,exec_ns,stall_ns\n",
                      0),
            0u);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);  // second repeat present
}

}  // namespace
}  // namespace netrs::harness
