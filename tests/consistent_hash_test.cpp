#include "kv/consistent_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace netrs::kv {
namespace {

std::vector<net::HostId> make_servers(int n, net::HostId base = 100) {
  std::vector<net::HostId> s;
  for (int i = 0; i < n; ++i) s.push_back(base + static_cast<net::HostId>(i));
  return s;
}

TEST(ConsistentHashTest, ReplicaSetsHaveRfDistinctServers) {
  const auto servers = make_servers(10);
  ConsistentHashRing ring(servers, 3);
  for (std::uint64_t key = 0; key < 2000; ++key) {
    const auto reps = ring.replicas_of_key(key);
    ASSERT_EQ(reps.size(), 3u);
    std::set<net::HostId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (net::HostId h : reps) {
      EXPECT_TRUE(std::find(servers.begin(), servers.end(), h) !=
                  servers.end());
    }
  }
}

TEST(ConsistentHashTest, LookupIsDeterministic) {
  const auto servers = make_servers(20);
  ConsistentHashRing a(servers, 3, 16, 7);
  ConsistentHashRing b(servers, 3, 16, 7);
  for (std::uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(a.group_of_key(key), b.group_of_key(key));
  }
}

TEST(ConsistentHashTest, GroupDatabaseConsistentWithLookups) {
  const auto servers = make_servers(15);
  ConsistentHashRing ring(servers, 3);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const auto g = ring.group_of_key(key);
    ASSERT_LT(g, ring.group_count());
    const auto& from_db = ring.groups()[g];
    const auto direct = ring.replicas(g);
    ASSERT_EQ(direct.size(), from_db.size());
    for (std::size_t i = 0; i < from_db.size(); ++i) {
      EXPECT_EQ(direct[i], from_db[i]);
    }
  }
}

TEST(ConsistentHashTest, DatabaseIsSmall) {
  // §IV-A: the RGID database must stay small. With v virtual nodes per
  // server there are at most servers*v segments.
  const auto servers = make_servers(100);
  ConsistentHashRing ring(servers, 3, 16);
  EXPECT_LE(ring.group_count(), 100u * 16u);
  EXPECT_GE(ring.group_count(), 100u);
}

TEST(ConsistentHashTest, LoadRoughlyBalanced) {
  const auto servers = make_servers(10);
  ConsistentHashRing ring(servers, 3, 64);
  sim::Rng rng(5);
  std::map<net::HostId, int> primary_count;
  const int keys = 50000;
  for (int i = 0; i < keys; ++i) {
    const std::uint64_t key = rng.next_u64();
    primary_count[ring.replicas_of_key(key)[0]]++;
  }
  for (const auto& [server, count] : primary_count) {
    (void)server;
    // Within a factor ~2.5 of fair share with 64 vnodes.
    EXPECT_GT(count, keys / 10 / 3);
    EXPECT_LT(count, keys / 10 * 3);
  }
  EXPECT_EQ(primary_count.size(), 10u);
}

TEST(ConsistentHashTest, SingleServerDegenerate) {
  const auto servers = make_servers(1);
  ConsistentHashRing ring(servers, 1, 4);
  for (std::uint64_t key = 0; key < 100; ++key) {
    const auto reps = ring.replicas_of_key(key);
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0], servers[0]);
  }
}

TEST(ConsistentHashTest, RfEqualsServerCount) {
  const auto servers = make_servers(3);
  ConsistentHashRing ring(servers, 3);
  for (std::uint64_t key = 0; key < 100; ++key) {
    const auto reps = ring.replicas_of_key(key);
    std::set<net::HostId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);  // every server in every set
  }
}

TEST(ConsistentHashTest, MinimalDisruptionOnServerRemoval) {
  // Consistent hashing's defining property: removing one server only
  // remaps keys that had it in their replica set.
  const auto servers = make_servers(12);
  auto fewer = servers;
  fewer.pop_back();
  const net::HostId removed = servers.back();
  ConsistentHashRing full(servers, 3, 32, 9);
  ConsistentHashRing less(fewer, 3, 32, 9);
  int moved = 0, checked = 0;
  for (std::uint64_t key = 0; key < 3000; ++key) {
    const auto before = full.replicas_of_key(key);
    const auto after = less.replicas_of_key(key);
    const bool had_removed =
        std::find(before.begin(), before.end(), removed) != before.end();
    if (!had_removed) {
      ++checked;
      ASSERT_EQ(before.size(), after.size());
      for (std::size_t i = 0; i < before.size(); ++i) {
        if (before[i] != after[i]) {
          ++moved;
          break;
        }
      }
    }
  }
  EXPECT_GT(checked, 1500);
  EXPECT_EQ(moved, 0) << "keys without the removed server must not move";
}

TEST(ConsistentHashTest, GroupIdsFitWireField) {
  const auto servers = make_servers(100);
  ConsistentHashRing ring(servers, 3, 16);
  EXPECT_LE(ring.group_count(), core::kMaxReplicaGroupId);
}

}  // namespace
}  // namespace netrs::kv
