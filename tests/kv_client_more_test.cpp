// Additional client-behavior tests: backup-replica distribution in NetRS
// mode, degenerate configurations, and pending-request accounting.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"

namespace netrs::kv {
namespace {

class ClientMoreRig : public ::testing::Test {
 protected:
  ClientMoreRig() : topo(8), fabric(sim, topo, net::FabricConfig{}) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    server_hosts = {topo.host_id(0, 0, 0), topo.host_id(0, 0, 1),
                    topo.host_id(0, 0, 2)};
    ring = std::make_unique<ConsistentHashRing>(server_hosts, 3, 8);
    zipf = std::make_unique<sim::ZipfDistribution>(100, 0.99);
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<net::HostId> server_hosts;
  std::unique_ptr<ConsistentHashRing> ring;
  std::unique_ptr<sim::ZipfDistribution> zipf;
};

TEST_F(ClientMoreRig, NetRSBackupsSpreadAcrossReplicas) {
  // Capture raw requests at the servers (no server logic) and check the
  // client's DRS backup choice is roughly uniform over the replica group.
  class Capture final : public net::Host {
   public:
    using Host::Host;
    void receive(net::Packet, net::NodeId) override { ++count; }
    int count = 0;
  };
  std::vector<std::unique_ptr<Capture>> caps;
  for (net::HostId h : server_hosts) {
    caps.push_back(std::make_unique<Capture>(fabric, h));
  }
  ClientConfig cfg;
  cfg.mode = ClientMode::kNetRS;
  cfg.arrival_rate = 3000.0;
  Client client(fabric, topo.host_id(0, 1, 0), cfg, *ring, *zipf,
                sim::Rng(5));
  client.start();
  sim.run_until(sim::seconds(1));
  client.stop();
  sim.run_until(sim.now() + sim::millis(20));

  int total = 0;
  for (const auto& c : caps) total += c->count;
  ASSERT_GT(total, 1000);
  for (const auto& c : caps) {
    EXPECT_GT(c->count, total / 6) << "backup choice is skewed";
    EXPECT_LT(c->count, total / 2 + total / 10);
  }
}

TEST_F(ClientMoreRig, ZeroRateClientIssuesNothing) {
  ClientConfig cfg;
  cfg.arrival_rate = 0.0;
  Client client(fabric, topo.host_id(0, 1, 0), cfg, *ring, *zipf,
                sim::Rng(6));
  client.start();
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(client.issued(), 0u);
  EXPECT_EQ(client.in_flight(), 0u);
}

TEST_F(ClientMoreRig, DoubleStartIsIdempotent) {
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::micros(200);
  std::vector<std::unique_ptr<Server>> servers;
  for (net::HostId h : server_hosts) {
    servers.push_back(std::make_unique<Server>(fabric, h, scfg,
                                               sim::Rng(h)));
  }
  ClientConfig cfg;
  cfg.arrival_rate = 1000.0;
  Client client(fabric, topo.host_id(0, 1, 0), cfg, *ring, *zipf,
                sim::Rng(7));
  client.start();
  client.start();  // must not double the arrival process
  sim.run_until(sim::seconds(1));
  client.stop();
  sim.run_until(sim.now() + sim::millis(50));
  EXPECT_NEAR(static_cast<double>(client.issued()), 1000.0, 160.0);
}

TEST_F(ClientMoreRig, KeysFollowZipfPopularity) {
  // The busiest replica group must receive far more than the average.
  ServerConfig scfg;
  scfg.fluctuate = false;
  scfg.mean_service_time = sim::micros(100);
  std::vector<std::unique_ptr<Server>> servers;
  for (net::HostId h : server_hosts) {
    servers.push_back(std::make_unique<Server>(fabric, h, scfg,
                                               sim::Rng(h)));
  }
  std::map<std::uint64_t, int> key_counts;
  ClientConfig cfg;
  cfg.arrival_rate = 3000.0;
  Client client(fabric, topo.host_id(0, 1, 0), cfg, *ring, *zipf,
                sim::Rng(8));
  client.set_completion_callback(
      [&](const Client::Completion& c) { ++key_counts[c.key]; });
  client.start();
  sim.run_until(sim::seconds(2));
  client.stop();
  sim.run_until(sim.now() + sim::millis(50));

  int max_count = 0, total = 0;
  for (const auto& [key, n] : key_counts) {
    (void)key;
    max_count = std::max(max_count, n);
    total += n;
  }
  ASSERT_GT(total, 3000);
  // Zipf(0.99) over 100 keys: rank 1 holds ~19% of the mass.
  EXPECT_GT(max_count, total / 10);
}

}  // namespace
}  // namespace netrs::kv
