#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.hpp"

namespace netrs::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoWithinSameInstant) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(42, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, PopReportsTime) {
  EventQueue q;
  q.push(77, [] {});
  EXPECT_EQ(q.next_time(), 77);
  auto [t, cb] = q.pop();
  EXPECT_EQ(t, 77);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(5, [&] { fired = true; });
  q.push(6, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(1, [] {});
  EXPECT_FALSE(q.cancel(999));
  EXPECT_FALSE(q.cancel(0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelFiredIdIsNoop) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.push(1, [] {});
  q.push(9, [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueueTest, CancelReleasesCapturedResourcesEagerly) {
  // Regression: cancel() used to keep the callback (and everything it
  // captured, e.g. a timeout's retained state) alive until the tombstone
  // reached the front of the heap. The capture must die at cancel time.
  EventQueue q;
  auto retained = std::make_shared<int>(7);
  const EventId id = q.push(100, [retained] { (void)*retained; });
  q.push(1, [] {});  // keeps the cancelled entry buried in the heap
  EXPECT_EQ(retained.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(retained.use_count(), 1) << "callback retained past cancel()";
  while (!q.empty()) q.pop().second();
}

TEST(EventQueueTest, RecycledSlotsInvalidateStaleIds) {
  // A slot freed by pop/cancel may be reused by a later push; the stale
  // EventId must not cancel the new occupant (generation tag check).
  EventQueue q;
  const EventId first = q.push(1, [] {});
  q.pop().second();  // frees the slot
  bool fired = false;
  q.push(2, [&] { fired = true; });  // likely reuses the slot
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, FifoPreservedAcrossSlotReuse) {
  // Slot indices get recycled out of order; the FIFO tie-break must follow
  // scheduling order, not slot order.
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.push(5, [] {});
  q.push(5, [&] { fired.push_back(0); });
  q.cancel(a);
  for (int i = 1; i <= 5; ++i) {
    q.push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, StressRandomOrderMatchesSort) {
  EventQueue q;
  Rng rng(7);
  std::vector<Time> times;
  for (int i = 0; i < 2000; ++i) {
    const Time t = static_cast<Time>(rng.uniform(500));
    times.push_back(t);
    q.push(t, [] {});
  }
  Time prev = -1;
  while (!q.empty()) {
    const Time t = q.pop().first;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EventQueueTest, StressWithRandomCancellations) {
  EventQueue q;
  Rng rng(11);
  std::vector<EventId> ids;
  int live = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(static_cast<Time>(rng.uniform(100)), [] {}));
    ++live;
  }
  for (const EventId id : ids) {
    if (rng.bernoulli(0.5) && q.cancel(id)) --live;
  }
  EXPECT_EQ(q.size(), static_cast<size_t>(live));
  int popped = 0;
  while (!q.empty()) {
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, live);
}

}  // namespace
}  // namespace netrs::sim
