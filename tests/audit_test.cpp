// Fault-injection tests for the runtime invariant auditor (NETRS_AUDIT
// builds). Each test injects one class of corruption and asserts the
// auditor pins it with the right rule and usable provenance; the final test
// proves a healthy run is violation-free. In plain builds every check
// compiles to a no-op, so the whole suite is skipped.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/audit.hpp"
#include "sim/simulator.hpp"

namespace netrs {
namespace {

using sim::AuditSummary;
using sim::AuditViolation;

/// First recorded violation matching `rule`, or nullptr.
const AuditViolation* find_violation(const AuditSummary& s,
                                     const std::string& rule) {
  for (const AuditViolation& v : s.violations) {
    if (v.rule == rule) return &v;
  }
  return nullptr;
}

class SinkHost final : public net::Host {
 public:
  using Host::Host;
  void receive(net::Packet pkt, net::NodeId) override {
    received.push_back(std::move(pkt));
  }
  void transmit(net::Packet pkt) { send(std::move(pkt)); }

  std::vector<net::Packet> received;
};

struct FabricRig {
  sim::Simulator sim;
  net::FatTree topo{4};
  net::Fabric fabric{sim, topo, net::FabricConfig{}};
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<std::unique_ptr<SinkHost>> hosts;

  FabricRig() {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    for (net::HostId h = 0; h < topo.host_count(); ++h) {
      hosts.push_back(std::make_unique<SinkHost>(fabric, h));
    }
  }

  net::Packet make_packet(net::HostId src, net::HostId dst) {
    net::Packet p;
    p.src = src;
    p.dst = dst;
    p.src_port = 9000;
    p.dst_port = 7000;
    p.payload.resize(32);
    return p;
  }
};

#define SKIP_WITHOUT_AUDIT()                                             \
  if constexpr (!sim::kAuditEnabled) {                                   \
    GTEST_SKIP() << "auditor compiled out; configure -DNETRS_AUDIT=ON";  \
  }

TEST(AuditTest, ScheduleIntoPastIsDetectedWithProvenance) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  bool fired = false;
  sim.at(sim::millis(1), [&] {
    // Deliberate causality fault: target time is behind now().
    sim.at(sim::micros(1), [&] { fired = true; });
  });
  sim.run();
  const AuditSummary s = sim.auditor().summary();
  EXPECT_EQ(s.violations_total, 1u);
  const AuditViolation* v = find_violation(s, "schedule-into-past");
  ASSERT_NE(v, nullptr);
  // Provenance carries both the bogus target and the current clock.
  EXPECT_NE(v->detail.find("t=1000"), std::string::npos) << v->detail;
  EXPECT_NE(v->detail.find("now=1000000"), std::string::npos) << v->detail;
  EXPECT_EQ(v->when, sim::millis(1));
  // Observation-only: the event still fires (clamped to now).
  EXPECT_TRUE(fired);
}

TEST(AuditTest, NegativeDelayIsDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  bool fired = false;
  sim.after(-5, [&] { fired = true; });
  sim.run();
  const AuditSummary s = sim.auditor().summary();
  EXPECT_NE(find_violation(s, "schedule-into-past"), nullptr);
  EXPECT_TRUE(fired);
}

TEST(AuditTest, LeakedDeliveryIsDetectedAtFinalize) {
  SKIP_WITHOUT_AUDIT();
  FabricRig rig;
  const net::HostId src = rig.topo.host_id(0, 0, 0);
  const net::HostId dst = rig.topo.host_id(0, 0, 1);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  // Fault: finalize while the delivery event is still queued — the parked
  // slot was never released.
  rig.fabric.audit_finalize(/*expect_drained=*/true);
  const AuditSummary s = rig.sim.auditor().summary();
  const AuditViolation* v = find_violation(s, "packet-leak");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("fabric-delivery"), std::string::npos) << v->detail;
  // Per-slot provenance names the packet.
  EXPECT_NE(v->detail.find("src=" + std::to_string(src)), std::string::npos)
      << v->detail;
  EXPECT_EQ(s.packets_injected, 1u);
  EXPECT_EQ(s.packets_delivered, 0u);
}

TEST(AuditTest, DoubleDeliveryIsDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  sim::SlotLedger ledger;
  ledger.set_name("test-pool");
  ledger.on_park(sim.auditor(), 3, [] { return std::string("pkt A"); });
  ledger.on_release(sim.auditor(), 3);
  // Fault: the same slot released again without a park in between.
  ledger.on_release(sim.auditor(), 3);
  const AuditSummary s = sim.auditor().summary();
  const AuditViolation* v = find_violation(s, "double-delivery");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("test-pool"), std::string::npos) << v->detail;
}

TEST(AuditTest, DoubleParkIsDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  sim::SlotLedger ledger;
  ledger.set_name("test-pool");
  ledger.on_park(sim.auditor(), 7, [] { return std::string("pkt A"); });
  // Fault: slot reused while still parked.
  ledger.on_park(sim.auditor(), 7, [] { return std::string("pkt B"); });
  const AuditSummary s = sim.auditor().summary();
  ASSERT_NE(find_violation(s, "double-park"), nullptr);
}

TEST(AuditTest, QueueAccountingMismatchIsDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  sim::StationLedger ledger;
  ledger.set_name("test-station");
  ledger.on_enqueue(sim.auditor(), 1);  // consistent: 1 enqueued, depth 1
  // Fault: report a dequeue but claim the depth never dropped.
  ledger.on_dequeue(sim.auditor(), 1);
  const AuditSummary s = sim.auditor().summary();
  const AuditViolation* v = find_violation(s, "queue-accounting");
  ASSERT_NE(v, nullptr);
  EXPECT_NE(v->detail.find("test-station"), std::string::npos) << v->detail;
}

TEST(AuditTest, ServiceSlotBoundsAreDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  sim::StationLedger ledger;
  ledger.set_name("test-station");
  ledger.on_service_start(sim.auditor(), /*busy_after=*/3, /*capacity=*/2);
  ledger.on_service_finish(sim.auditor(), /*busy_after=*/-1, /*capacity=*/2);
  const AuditSummary s = sim.auditor().summary();
  EXPECT_NE(find_violation(s, "service-slot-overflow"), nullptr);
  EXPECT_NE(find_violation(s, "service-slot-underflow"), nullptr);
}

TEST(AuditTest, BusyTimeBeyondCapacityIsDetected) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator sim;
  sim::StationLedger ledger;
  ledger.set_name("test-station");
  // 2 cores over a 1 ms window can accrue at most 2 ms of busy core-time.
  ledger.check_busy_time(sim.auditor(), /*busy=*/sim::millis(3),
                         /*window=*/sim::millis(1), /*cores=*/2);
  const AuditSummary s = sim.auditor().summary();
  ASSERT_NE(find_violation(s, "busy-time-overflow"), nullptr);
}

TEST(AuditTest, HealthyRunIsViolationFree) {
  SKIP_WITHOUT_AUDIT();
  FabricRig rig;
  const net::HostId src = rig.topo.host_id(0, 0, 0);
  const net::HostId dst = rig.topo.host_id(3, 1, 1);
  rig.hosts[src]->transmit(rig.make_packet(src, dst));
  rig.sim.run();
  rig.fabric.audit_finalize(/*expect_drained=*/true);
  const AuditSummary s = rig.sim.auditor().summary();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.violations_total, 0u);
  EXPECT_GT(s.checks, 0u);
  // The ledger counts per-hop sends: the cross-pod path traverses 2 host
  // links + 4 switch links, and conservation holds hop by hop.
  EXPECT_EQ(s.packets_injected, 6u);
  EXPECT_EQ(s.packets_delivered, 6u);
  EXPECT_EQ(s.packets_in_flight_at_end, 0u);
  ASSERT_EQ(rig.hosts[dst]->received.size(), 1u);
}

TEST(AuditTest, SummaryMergeAggregatesAcrossRuns) {
  SKIP_WITHOUT_AUDIT();
  sim::Simulator a;
  a.auditor().on_packet_injected();
  a.auditor().on_packet_dropped("server-malformed");
  a.auditor().record("packet-leak", "slot 1");
  sim::Simulator b;
  b.auditor().on_packet_injected();
  b.auditor().on_packet_delivered();
  b.auditor().on_packet_dropped("server-malformed");

  AuditSummary merged = a.auditor().summary();
  merged.merge(b.auditor().summary());
  EXPECT_EQ(merged.packets_injected, 2u);
  EXPECT_EQ(merged.packets_delivered, 1u);
  EXPECT_EQ(merged.violations_total, 1u);
  EXPECT_EQ(merged.drops_by_reason.at("server-malformed"), 2u);
}

}  // namespace
}  // namespace netrs
