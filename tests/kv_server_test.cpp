#include "kv/server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kv/app_message.hpp"
#include "net/switch.hpp"
#include "netrs/packet_format.hpp"

namespace netrs::kv {
namespace {

class ProbeClient final : public net::Host {
 public:
  using Host::Host;
  void receive(net::Packet pkt, net::NodeId from) override {
    (void)from;
    responses.push_back(std::move(pkt));
    arrival_times.push_back(simulator().now());
  }
  void transmit(net::Packet pkt) { send(std::move(pkt)); }
  std::vector<net::Packet> responses;
  std::vector<sim::Time> arrival_times;
};

class ServerRig : public ::testing::Test {
 protected:
  ServerRig()
      : topo(4), fabric(sim, topo, net::FabricConfig{}) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
  }

  Server& make_server(net::HostId h, ServerConfig cfg) {
    servers.push_back(
        std::make_unique<Server>(fabric, h, cfg, sim::Rng(42)));
    return *servers.back();
  }

  net::Packet make_request(net::HostId src, net::HostId dst,
                           std::uint64_t req_id,
                           core::Magic mf = core::kMagicRequest,
                           core::RsNodeId rid = core::kRidUnset,
                           std::uint16_t rv = 0) {
    core::RequestHeader rh;
    rh.rid = rid;
    rh.mf = mf;
    rh.rv = rv;
    rh.rgid = 5;
    AppRequest ar;
    ar.client_request_id = req_id;
    ar.key = 0xDEAD;
    net::Packet p;
    p.src = src;  // overwritten by Host::send; set for direct injection
    p.dst = dst;
    p.src_port = kClientPort;
    p.dst_port = kServerPort;
    p.payload = core::encode_request(rh, encode_app_request(ar));
    return p;
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<std::unique_ptr<Server>> servers;
};

TEST_F(ServerRig, RespondsToRequestWithEchoedIds) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.mean_service_time = sim::millis(1);
  const net::HostId server_host = topo.host_id(0, 0, 0);
  const net::HostId client_host = topo.host_id(0, 0, 1);
  make_server(server_host, cfg);
  ProbeClient client(fabric, client_host);

  client.transmit(make_request(client_host, server_host, 77,
                               core::magic_f(core::kMagicResponse),
                               /*rid=*/9, /*rv=*/123));
  sim.run();

  ASSERT_EQ(client.responses.size(), 1u);
  const auto& resp = client.responses[0];
  EXPECT_EQ(resp.src, server_host);
  EXPECT_EQ(resp.dst, client_host);
  EXPECT_EQ(resp.src_port, kServerPort);
  EXPECT_EQ(resp.dst_port, kClientPort);

  const auto rh = core::decode_response(resp.payload);
  ASSERT_TRUE(rh.has_value());
  EXPECT_EQ(rh->rid, 9);   // copied from the request
  EXPECT_EQ(rh->rv, 123);  // retained value echoed
  // MF = f^-1(f(Mresp)) = Mresp.
  EXPECT_EQ(rh->mf, core::kMagicResponse);

  const auto app = decode_app_response(core::response_app_payload(resp.payload));
  ASSERT_TRUE(app.has_value());
  EXPECT_EQ(app->client_request_id, 77u);
  EXPECT_EQ(app->key, 0xDEADu);
  EXPECT_EQ(app->value_bytes, cfg.value_bytes);
  EXPECT_EQ(resp.phantom_payload, cfg.value_bytes);
}

TEST_F(ServerRig, ParallelismBoundsInService) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.parallelism = 2;
  cfg.mean_service_time = sim::millis(10);
  const net::HostId server_host = topo.host_id(0, 0, 0);
  const net::HostId client_host = topo.host_id(0, 0, 1);
  Server& server = make_server(server_host, cfg);
  ProbeClient client(fabric, client_host);

  for (int i = 0; i < 6; ++i) {
    client.transmit(make_request(client_host, server_host, 100 + i));
  }
  // After delivery (60us), 2 in service + 4 queued.
  sim.run_until(sim::millis(1));
  EXPECT_EQ(server.queue_size(), 6u);
  sim.run();
  EXPECT_EQ(client.responses.size(), 6u);
  EXPECT_EQ(server.served(), 6u);
  EXPECT_EQ(server.queue_size(), 0u);
}

TEST_F(ServerRig, PiggybackedQueueSizeReflectsBacklog) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.parallelism = 1;
  cfg.mean_service_time = sim::millis(5);
  const net::HostId server_host = topo.host_id(0, 0, 0);
  const net::HostId client_host = topo.host_id(0, 0, 1);
  make_server(server_host, cfg);
  ProbeClient client(fabric, client_host);

  for (int i = 0; i < 4; ++i) {
    client.transmit(make_request(client_host, server_host, i));
  }
  sim.run();
  ASSERT_EQ(client.responses.size(), 4u);
  // The first response left while 3 requests remained; the last left with 0.
  const auto first = core::decode_response(client.responses[0].payload);
  const auto last = core::decode_response(client.responses[3].payload);
  EXPECT_EQ(first->status.queue_size, 3u);
  EXPECT_EQ(last->status.queue_size, 0u);
  // Piggybacked service time is seeded at the configured mean.
  EXPECT_GT(first->status.service_time_ns, 0u);
}

TEST_F(ServerRig, ExponentialServiceRoughlyMatchesMean) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.parallelism = 1;
  cfg.mean_service_time = sim::millis(2);
  const net::HostId server_host = topo.host_id(1, 0, 0);
  const net::HostId client_host = topo.host_id(1, 0, 1);
  Server& server = make_server(server_host, cfg);
  ProbeClient client(fabric, client_host);

  const int n = 300;
  for (int i = 0; i < n; ++i) {
    client.transmit(make_request(client_host, server_host, i));
  }
  sim.run();
  ASSERT_EQ(client.responses.size(), static_cast<std::size_t>(n));
  // n sequential exponential services with mean 2ms: total ~ n * 2ms.
  const double total_ms = sim::to_millis(sim.now());
  EXPECT_NEAR(total_ms, n * 2.0, n * 2.0 * 0.25);
  EXPECT_GT(server.busy_fraction(sim.now()), 0.9);
}

TEST_F(ServerRig, FluctuationSwitchesServiceMean) {
  ServerConfig cfg;
  cfg.fluctuate = true;
  cfg.fluctuation_interval = sim::millis(50);
  cfg.fluctuation_factor = 3.0;
  cfg.mean_service_time = sim::millis(4);
  const net::HostId server_host = topo.host_id(1, 0, 0);
  Server& server = make_server(server_host, cfg);

  // Sample the mode over many intervals: both modes must appear with
  // roughly equal frequency (bimodal model, d = 3).
  int fast = 0, slow = 0;
  for (int i = 0; i < 400; ++i) {
    sim.run_until(sim.now() + sim::millis(50));
    if (server.current_mean() == sim::millis(4)) {
      ++slow;
    } else {
      EXPECT_EQ(server.current_mean(),
                static_cast<sim::Duration>(sim::millis(4) / 3.0));
      ++fast;
    }
  }
  EXPECT_GT(fast, 120);
  EXPECT_GT(slow, 120);
}

TEST_F(ServerRig, DrsLabelledRequestYieldsMonitorResponse) {
  ServerConfig cfg;
  cfg.fluctuate = false;
  cfg.mean_service_time = sim::millis(1);
  const net::HostId server_host = topo.host_id(0, 0, 0);
  const net::HostId client_host = topo.host_id(0, 0, 1);
  make_server(server_host, cfg);
  ProbeClient client(fabric, client_host);

  client.transmit(make_request(client_host, server_host, 1,
                               core::magic_f(core::kMagicMonitor)));
  sim.run();
  ASSERT_EQ(client.responses.size(), 1u);
  const auto rh = core::decode_response(client.responses[0].payload);
  ASSERT_TRUE(rh.has_value());
  EXPECT_EQ(core::classify(rh->mf), core::PacketKind::kMonitorOnly);
}

}  // namespace
}  // namespace netrs::kv
