#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace netrs::sim {
namespace {

TEST(TaskTest, DefaultIsEmpty) {
  Task t;
  EXPECT_FALSE(static_cast<bool>(t));
  EXPECT_FALSE(t.is_inline());
}

TEST(TaskTest, InvokesSmallLambdaInline) {
  int fired = 0;
  Task t([&fired] { ++fired; });
  EXPECT_TRUE(static_cast<bool>(t));
  EXPECT_TRUE(t.is_inline());
  t();
  t();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, LargeCaptureFallsBackToHeap) {
  std::array<std::byte, 256> big{};
  big[0] = std::byte{7};
  bool fired = false;
  Task t([big, &fired] { fired = big[0] == std::byte{7}; });
  EXPECT_FALSE(t.is_inline());
  t();
  EXPECT_TRUE(fired);
}

TEST(TaskTest, CaptureAtInlineBoundaryStaysInline) {
  // this-pointer-free capture of exactly kInlineSize bytes.
  struct Exact {
    std::byte pad[Task::kInlineSize - sizeof(bool*)];
    bool* flag;
    void operator()() const { *flag = true; }
  };
  static_assert(sizeof(Exact) <= Task::kInlineSize);
  bool fired = false;
  Task t(Exact{{}, &fired});
  EXPECT_TRUE(t.is_inline());
  t();
  EXPECT_TRUE(fired);
}

TEST(TaskTest, MoveTransfersOwnership) {
  int fired = 0;
  Task a([&fired] { ++fired; });
  Task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);

  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(fired, 2);
}

TEST(TaskTest, MovesMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(41);
  int got = 0;
  Task t([owned = std::move(owned), &got] { got = *owned + 1; });
  Task moved = std::move(t);
  moved();
  EXPECT_EQ(got, 42);
}

TEST(TaskTest, DestructionReleasesCapturedState) {
  auto shared = std::make_shared<int>(1);
  {
    Task t([shared] { (void)*shared; });
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(TaskTest, ResetReleasesCapturedStateEagerly) {
  auto shared = std::make_shared<int>(1);
  Task t([shared] { (void)*shared; });
  EXPECT_EQ(shared.use_count(), 2);
  t.reset();
  EXPECT_EQ(shared.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(TaskTest, HeapFallbackReleasesOnDestruction) {
  auto shared = std::make_shared<int>(1);
  std::array<std::byte, 200> big{};
  {
    Task t([shared, big] { (void)*shared, (void)big; });
    EXPECT_FALSE(t.is_inline());
    EXPECT_EQ(shared.use_count(), 2);
  }
  EXPECT_EQ(shared.use_count(), 1);
}

TEST(TaskTest, MoveAssignDestroysPreviousCallable) {
  auto first = std::make_shared<int>(1);
  Task t([first] { (void)*first; });
  EXPECT_EQ(first.use_count(), 2);
  t = Task([] {});
  EXPECT_EQ(first.use_count(), 1);
}

}  // namespace
}  // namespace netrs::sim
