#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "sim/rng.hpp"

namespace netrs::ilp {
namespace {

TEST(SimplexTest, UnconstrainedSitsAtBestBounds) {
  Model m;
  const VarId x = m.add_var(1.0, 5.0, 2.0);   // min 2x -> x = 1
  const VarId y = m.add_var(-3.0, 4.0, -1.0); // min -y -> y = 4
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.values[static_cast<std::size_t>(x)], 1.0);
  EXPECT_DOUBLE_EQ(s.values[static_cast<std::size_t>(y)], 4.0);
  EXPECT_DOUBLE_EQ(s.objective, 2.0 - 4.0);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  x=2, y=2, obj 10.
  Model m;
  const VarId x = m.add_var(0.0, kInf, -3.0);
  const VarId y = m.add_var(0.0, kInf, -2.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLe, 4.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 2.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(y)], 2.0, 1e-9);
}

TEST(SimplexTest, EqualityAndGeConstraints) {
  // min x + y s.t. x + y >= 2, x - y = 0 -> x = y = 1.
  Model m;
  const VarId x = m.add_var(0.0, kInf, 1.0);
  const VarId y = m.add_var(0.0, kInf, 1.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kGe, 2.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, -1), Sense::kEq, 0.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, BoundedVariablesViaBoundFlips) {
  // min -x - y s.t. x + 2y <= 3, x,y in [0,1] -> both at upper bound.
  Model m;
  const VarId x = m.add_var(0.0, 1.0, -1.0);
  const VarId y = m.add_var(0.0, 1.0, -1.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 2), Sense::kLe, 3.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_var(0.0, 1.0, 1.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kGe, 2.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleSystem) {
  Model m;
  const VarId x = m.add_var(0.0, kInf, 0.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 1.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kGe, 3.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_var(0.0, kInf, -1.0);
  const VarId y = m.add_var(0.0, kInf, 0.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, -1), Sense::kLe, 1.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsRows) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  Model m;
  const VarId x = m.add_var(0.0, kInf, 1.0);
  m.add_constraint(LinExpr().add(x, -1), Sense::kLe, -3.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 3.0, 1e-9);
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  Model m;
  const VarId x = m.add_var(0.0, 10.0, -1.0);
  m.add_constraint(LinExpr().add(x, 1), Sense::kLe, 5.0);
  m.add_constraint(LinExpr().add(x, 2), Sense::kLe, 10.0);  // same thing
  m.add_constraint(LinExpr().add(x, 1), Sense::kEq, 5.0);
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[static_cast<std::size_t>(x)], 5.0, 1e-9);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Many redundant constraints through the same vertex (degeneracy).
  Model m;
  const VarId x = m.add_var(0.0, kInf, -1.0);
  const VarId y = m.add_var(0.0, kInf, -1.0);
  for (int i = 1; i <= 10; ++i) {
    m.add_constraint(LinExpr().add(x, static_cast<double>(i))
                         .add(y, static_cast<double>(i)),
                     Sense::kLe, static_cast<double>(2 * i));
  }
  const Solution s = solve_lp(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

// Property: on random feasible LPs (constraints built around a known
// interior point), the solver never reports infeasible, and its optimum is
// at least as good as the known point.
TEST(SimplexTest, RandomFeasibleLpsSolveAtLeastAsWellAsWitness) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    const int nv = 2 + static_cast<int>(rng.uniform(6));
    const int nc = 1 + static_cast<int>(rng.uniform(8));
    Model m;
    std::vector<double> witness;
    for (int j = 0; j < nv; ++j) {
      witness.push_back(rng.next_double() * 5.0);
      m.add_var(0.0, 10.0, rng.next_double() * 4.0 - 2.0);
    }
    for (int i = 0; i < nc; ++i) {
      LinExpr e;
      double lhs = 0.0;
      for (int j = 0; j < nv; ++j) {
        const double c = rng.next_double() * 4.0 - 2.0;
        e.add(j, c);
        lhs += c * witness[static_cast<std::size_t>(j)];
      }
      m.add_constraint(std::move(e), Sense::kLe, lhs + rng.next_double());
    }
    const Solution s = solve_lp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(s.objective, m.objective_value(witness) + 1e-6);
    EXPECT_TRUE(m.is_feasible(s.values, 1e-6));
  }
}

// --- Branch and bound -------------------------------------------------------

TEST(BnbTest, KnapsackOptimal) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binary -> a=b=1 (weight 5).
  Model m;
  const VarId a = m.add_binary(-5.0);
  const VarId b = m.add_binary(-4.0);
  const VarId c = m.add_binary(-3.0);
  m.add_constraint(LinExpr().add(a, 2).add(b, 3).add(c, 1), Sense::kLe, 5.0);
  const BnbResult r = solve_ilp(m);
  ASSERT_EQ(r.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.solution.objective, -9.0, 1e-9);
}

TEST(BnbTest, SetCover) {
  Model m;
  const VarId s1 = m.add_binary(1.0);
  const VarId s2 = m.add_binary(1.0);
  const VarId s3 = m.add_binary(1.0);
  m.add_constraint(LinExpr().add(s1, 1).add(s3, 1), Sense::kGe, 1.0);
  m.add_constraint(LinExpr().add(s1, 1).add(s2, 1), Sense::kGe, 1.0);
  m.add_constraint(LinExpr().add(s2, 1).add(s3, 1), Sense::kGe, 1.0);
  const BnbResult r = solve_ilp(m);
  ASSERT_EQ(r.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.solution.objective, 2.0, 1e-9);
}

TEST(BnbTest, GeneralIntegerRoundsUp) {
  Model m;
  const VarId y = m.add_integer(0.0, 10.0, 1.0);
  m.add_constraint(LinExpr().add(y, 1), Sense::kGe, 2.3);
  const BnbResult r = solve_ilp(m);
  ASSERT_EQ(r.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.solution.objective, 3.0, 1e-9);
}

TEST(BnbTest, InfeasibleIntegerProgram) {
  Model m;
  const VarId a = m.add_binary(1.0);
  const VarId b = m.add_binary(1.0);
  // a + b = 1 and a + b = 2 cannot both hold.
  m.add_constraint(LinExpr().add(a, 1).add(b, 1), Sense::kEq, 1.0);
  m.add_constraint(LinExpr().add(a, 1).add(b, 1), Sense::kEq, 2.0);
  EXPECT_EQ(solve_ilp(m).solution.status, SolveStatus::kInfeasible);
}

TEST(BnbTest, FractionalLpNeedsBranching) {
  // LP relaxation gives x = y = 0.5 with objective 1, but |x - y| <= 0.5
  // kills both single-variable integer points, so the integer optimum is
  // (1, 1) with objective 2 — reachable only by branching.
  Model m;
  const VarId x = m.add_binary(1.0);
  const VarId y = m.add_binary(1.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kGe, 1.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, -1), Sense::kLe, 0.5);
  m.add_constraint(LinExpr().add(y, 1).add(x, -1), Sense::kLe, 0.5);
  const BnbResult r = solve_ilp(m);
  ASSERT_EQ(r.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.solution.objective, 2.0, 1e-9);
}

TEST(BnbTest, WarmStartAcceptedWhenFeasible) {
  Model m;
  const VarId a = m.add_binary(1.0);
  const VarId b = m.add_binary(1.0);
  m.add_constraint(LinExpr().add(a, 1).add(b, 1), Sense::kGe, 1.0);
  BnbOptions opts;
  opts.initial_incumbent = {1.0, 1.0};  // feasible but suboptimal
  const BnbResult r = solve_ilp(m, opts);
  ASSERT_EQ(r.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.solution.objective, 1.0, 1e-9);  // improved past warm start
}

TEST(BnbTest, NodeLimitReturnsIncumbentAsFeasible) {
  sim::Rng rng(123);
  Model m;
  // A 20-item knapsack with a tight budget; 1 node is not enough to prove
  // optimality, but the warm start provides an incumbent.
  LinExpr weight;
  std::vector<double> warm;
  for (int i = 0; i < 20; ++i) {
    const VarId v = m.add_binary(-(1.0 + rng.next_double()));
    weight.add(v, 1.0 + 3.0 * rng.next_double());
    warm.push_back(0.0);
  }
  m.add_constraint(std::move(weight), Sense::kLe, 10.0);
  BnbOptions opts;
  opts.max_nodes = 1;
  opts.initial_incumbent = warm;  // all-zero is feasible
  const BnbResult r = solve_ilp(m, opts);
  EXPECT_EQ(r.solution.status, SolveStatus::kFeasible);
  EXPECT_TRUE(r.solution.has_point());
}

// Property test: random binary programs, exact solution vs brute force.
TEST(BnbTest, MatchesBruteForceOnRandomBinaryPrograms) {
  sim::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int nv = 2 + static_cast<int>(rng.uniform(7));  // up to 8 vars
    const int nc = 1 + static_cast<int>(rng.uniform(4));
    Model m;
    std::vector<double> obj;
    for (int j = 0; j < nv; ++j) {
      obj.push_back(std::floor(rng.next_double() * 11.0) - 5.0);
      m.add_var(0.0, 1.0, obj.back(), /*integral=*/true);
    }
    struct Row {
      std::vector<double> coef;
      double rhs;
      Sense sense;
    };
    std::vector<Row> rows;
    for (int i = 0; i < nc; ++i) {
      Row row;
      LinExpr e;
      for (int j = 0; j < nv; ++j) {
        row.coef.push_back(std::floor(rng.next_double() * 7.0) - 3.0);
        e.add(j, row.coef.back());
      }
      row.rhs = std::floor(rng.next_double() * 9.0) - 2.0;
      row.sense = rng.bernoulli(0.5) ? Sense::kLe : Sense::kGe;
      rows.push_back(row);
      m.add_constraint(std::move(e), row.sense, row.rhs);
    }

    // Brute force over all 2^nv assignments.
    double best = kInf;
    for (int mask = 0; mask < (1 << nv); ++mask) {
      double val = 0.0;
      bool ok = true;
      for (const Row& row : rows) {
        double lhs = 0.0;
        for (int j = 0; j < nv; ++j) {
          if (mask & (1 << j)) lhs += row.coef[static_cast<std::size_t>(j)];
        }
        if (row.sense == Sense::kLe ? lhs > row.rhs + 1e-9
                                    : lhs < row.rhs - 1e-9) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (int j = 0; j < nv; ++j) {
        if (mask & (1 << j)) val += obj[static_cast<std::size_t>(j)];
      }
      best = std::min(best, val);
    }

    const BnbResult r = solve_ilp(m);
    if (best == kInf) {
      EXPECT_EQ(r.solution.status, SolveStatus::kInfeasible)
          << "trial " << trial;
    } else {
      ASSERT_EQ(r.solution.status, SolveStatus::kOptimal)
          << "trial " << trial;
      EXPECT_NEAR(r.solution.objective, best, 1e-6) << "trial " << trial;
      EXPECT_TRUE(m.is_feasible(r.solution.values, 1e-6));
    }
  }
}

TEST(ModelTest, FeasibilityChecker) {
  Model m;
  const VarId x = m.add_binary(1.0);
  const VarId y = m.add_var(0.0, 2.0, 0.0);
  m.add_constraint(LinExpr().add(x, 1).add(y, 1), Sense::kLe, 2.0);
  EXPECT_TRUE(m.is_feasible({1.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({1.0, 1.5}));   // violates the row
  EXPECT_FALSE(m.is_feasible({0.5, 0.5}));   // x not integral
  EXPECT_FALSE(m.is_feasible({0.0, 3.0}));   // y above bound
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong arity
  (void)x;
  (void)y;
}

}  // namespace
}  // namespace netrs::ilp
