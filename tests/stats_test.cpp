#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/rng.hpp"

namespace netrs::sim {
namespace {

TEST(LatencyRecorderTest, MeanMinMax) {
  LatencyRecorder r;
  r.add(1.0);
  r.add(2.0);
  r.add(6.0);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 6.0);
  EXPECT_EQ(r.count(), 3u);
}

TEST(LatencyRecorderTest, PercentileExactOrderStatistics) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(i);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
  EXPECT_NEAR(r.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile(0.99), 99.01, 1e-9);
}

TEST(LatencyRecorderTest, PercentileInterleavedWithAdds) {
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 5.0);
  r.add(10.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
}

TEST(LatencyRecorderTest, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 3.0);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.add(7.0);
  r.clear();
  EXPECT_TRUE(r.empty());
  r.add(3.0);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
}

TEST(P2QuantileTest, NoSamplesIsInfinite) {
  P2Quantile q(0.95);
  EXPECT_TRUE(std::isinf(q.estimate()));
}

TEST(P2QuantileTest, FewSamplesReturnMax) {
  P2Quantile q(0.95);
  q.add(3.0);
  q.add(9.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.estimate(), 9.0);
}

TEST(P2QuantileTest, TracksMedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) q.add(rng.next_double());
  EXPECT_NEAR(q.estimate(), 0.5, 0.02);
}

TEST(P2QuantileTest, Tracks95thOfExponential) {
  P2Quantile q(0.95);
  Rng rng(78);
  for (int i = 0; i < 100000; ++i) q.add(rng.exponential(1.0));
  // True p95 of Exp(1) is -ln(0.05) ~= 2.9957.
  EXPECT_NEAR(q.estimate(), 2.9957, 0.25);
}

TEST(P2QuantileTest, AgreesWithExactQuantileOnRandomData) {
  Rng rng(79);
  P2Quantile q(0.9);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(5.0) + rng.next_double();
    q.add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.9 * all.size())];
  EXPECT_NEAR(q.estimate(), exact, 0.15 * exact);
}

TEST(EwmaTest, FirstSampleSeeds) {
  Ewma e(0.9);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value_or(42.0), 42.0);
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.9);
  e.add(0.0);
  for (int i = 0; i < 200; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(EwmaTest, AlphaWeightsHistory) {
  Ewma e(0.9);
  e.add(100.0);
  e.add(0.0);
  // 0.9 * 100 + 0.1 * 0 = 90.
  EXPECT_DOUBLE_EQ(e.value(), 90.0);
}

TEST(EwmaTest, ResetClears) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

}  // namespace
}  // namespace netrs::sim
