#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/rng.hpp"

namespace netrs::sim {
namespace {

TEST(LatencyRecorderTest, MeanMinMax) {
  LatencyRecorder r;
  r.add(1.0);
  r.add(2.0);
  r.add(6.0);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 6.0);
  EXPECT_EQ(r.count(), 3u);
}

TEST(LatencyRecorderTest, PercentileExactOrderStatistics) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(i);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
  EXPECT_NEAR(r.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile(0.99), 99.01, 1e-9);
}

TEST(LatencyRecorderTest, PercentileInterleavedWithAdds) {
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 5.0);
  r.add(10.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
}

TEST(LatencyRecorderTest, MergeCombinesSamples) {
  LatencyRecorder a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 3.0);
}

TEST(LatencyRecorderTest, UnsortedSortCounterTracksSlowPathOnly) {
  // Regression guard: the report path batches p50/p95/p99/p999 queries, so
  // an unfinalized recorder re-sorts the same samples once per query. The
  // process-wide counter makes that slow path observable.
  LatencyRecorder r;
  for (int i = 0; i < 64; ++i) r.add(64.0 - i);

  LatencyRecorder::reset_unsorted_percentile_sorts();
  (void)r.percentile(0.5);
  (void)r.percentile(0.95);
  EXPECT_EQ(LatencyRecorder::unsorted_percentile_sorts(), 2u);

  r.finalize();
  (void)r.percentile(0.5);
  (void)r.percentile(0.95);
  (void)r.percentile(0.99);
  (void)r.percentile(0.999);
  EXPECT_EQ(LatencyRecorder::unsorted_percentile_sorts(), 2u)
      << "finalized percentile queries must not copy-sort";

  r.add(1.0);  // invalidates the sorted state again
  (void)r.percentile(0.5);
  EXPECT_EQ(LatencyRecorder::unsorted_percentile_sorts(), 3u);
}

TEST(LatencyRecorderTest, PercentileDoesNotMutateFromConstQuery) {
  // Regression: percentile() used to lazily sort `mutable` storage from a
  // const method — a data race once results are read while other threads
  // merge, and a surprise reorder of samples() under the caller's feet.
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  r.add(3.0);
  const LatencyRecorder& cr = r;
  EXPECT_DOUBLE_EQ(cr.percentile(0.5), 3.0);
  const std::vector<double> expected = {5.0, 1.0, 3.0};
  EXPECT_EQ(cr.samples(), expected) << "const percentile() reordered samples";
}

TEST(LatencyRecorderTest, FinalizeSortsInPlace) {
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  r.add(3.0);
  r.finalize();
  const std::vector<double> expected = {1.0, 3.0, 5.0};
  EXPECT_EQ(r.samples(), expected);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 5.0);
}

TEST(LatencyRecorderTest, MergeTracksSortedness) {
  // Regression: merge() reset sorted_ = samples_.empty(), discarding known
  // order. Appending an empty recorder must preserve sortedness, and
  // merging sorted into empty must inherit it; either way queries after a
  // later finalize() stay exact.
  LatencyRecorder sorted_src;
  sorted_src.add(1.0);
  sorted_src.add(2.0);
  sorted_src.finalize();

  LatencyRecorder dst;
  dst.merge(sorted_src);  // empty <- sorted: still sorted
  dst.merge(LatencyRecorder{});  // append nothing: still sorted
  const std::vector<double> expected = {1.0, 2.0};
  EXPECT_EQ(dst.samples(), expected);
  EXPECT_DOUBLE_EQ(dst.percentile(0.5), 1.5);

  LatencyRecorder unsorted_src;
  unsorted_src.add(0.5);
  dst.merge(unsorted_src);
  EXPECT_DOUBLE_EQ(dst.percentile(0.0), 0.5);
  dst.finalize();
  const std::vector<double> merged = {0.5, 1.0, 2.0};
  EXPECT_EQ(dst.samples(), merged);
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.add(7.0);
  r.clear();
  EXPECT_TRUE(r.empty());
  r.add(3.0);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
}

TEST(P2QuantileTest, NoSamplesIsNaN) {
  // Documented: no samples -> NaN (callers gate on count()), not +inf.
  P2Quantile q(0.95);
  EXPECT_TRUE(std::isnan(q.estimate()));
}

TEST(P2QuantileTest, FewSamplesInterpolateQuantile) {
  // Regression: with fewer than 5 samples estimate() returned the maximum
  // of the buffer regardless of q. It must interpolate the q-quantile of
  // the sorted buffer, exactly as LatencyRecorder::percentile does.
  P2Quantile p95(0.95);
  p95.add(3.0);
  p95.add(9.0);
  p95.add(1.0);
  // sorted {1,3,9}, idx = 0.95 * 2 = 1.9 -> 0.1*3 + 0.9*9 = 8.4.
  EXPECT_DOUBLE_EQ(p95.estimate(), 8.4);

  P2Quantile median(0.5);
  median.add(9.0);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.estimate(), 6.0);

  P2Quantile single(0.9);
  single.add(7.0);
  EXPECT_DOUBLE_EQ(single.estimate(), 7.0);
}

TEST(P2QuantileTest, MatchesExactPercentileBelowFiveSamples) {
  Rng rng(42);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    P2Quantile est(q);
    LatencyRecorder exact;
    for (int n = 1; n <= 4; ++n) {
      const double v = rng.exponential(3.0);
      est.add(v);
      exact.add(v);
      EXPECT_DOUBLE_EQ(est.estimate(), exact.percentile(q))
          << "q=" << q << " n=" << n;
    }
  }
}

TEST(P2QuantileTest, TracksMedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) q.add(rng.next_double());
  EXPECT_NEAR(q.estimate(), 0.5, 0.02);
}

TEST(P2QuantileTest, Tracks95thOfExponential) {
  P2Quantile q(0.95);
  Rng rng(78);
  for (int i = 0; i < 100000; ++i) q.add(rng.exponential(1.0));
  // True p95 of Exp(1) is -ln(0.05) ~= 2.9957.
  EXPECT_NEAR(q.estimate(), 2.9957, 0.25);
}

TEST(P2QuantileTest, AgreesWithExactQuantileOnRandomData) {
  Rng rng(79);
  P2Quantile q(0.9);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(5.0) + rng.next_double();
    q.add(v);
    all.push_back(v);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(0.9 * all.size())];
  EXPECT_NEAR(q.estimate(), exact, 0.15 * exact);
}

TEST(EwmaTest, FirstSampleSeeds) {
  Ewma e(0.9);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value_or(42.0), 42.0);
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesToConstantInput) {
  Ewma e(0.9);
  e.add(0.0);
  for (int i = 0; i < 200; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(EwmaTest, AlphaWeightsHistory) {
  Ewma e(0.9);
  e.add(100.0);
  e.add(0.0);
  // 0.9 * 100 + 0.1 * 0 = 90.
  EXPECT_DOUBLE_EQ(e.value(), 90.0);
}

TEST(EwmaTest, ResetClears) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

}  // namespace
}  // namespace netrs::sim
