// Fault-injection engine tests (DESIGN.md §9, docs/SCENARIOS.md):
//
//  * FaultPlan::parse — grammar coverage (verbs, synonyms, units,
//    comments, '@file' loading) and rejection of malformed entries.
//  * Determinism — a fixed fault plan produces bit-identical result
//    digests across --shards {1,4} x --jobs {1,4}: fault events run at
//    full shard barriers on the global simulator, so fault timing can
//    never depend on the partitioning.
//  * Zero-fault equivalence — an empty or comment-only plan reproduces
//    the recorded golden digests exactly (the fault path adds no RNG
//    draws and no event reordering when nothing is scheduled).
//  * Audit accounting (checked builds) — a crash/recover episode keeps
//    packet conservation exact: every packet is delivered, still in
//    flight at the end, or in the drop ledger under a fault reason, and
//    no invariant check fires while a server is dark.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "harness/experiment.hpp"
#include "sim/audit.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace netrs {
namespace {

using sim::FaultOp;
using sim::FaultPlan;
using sim::FaultUnit;

// ---------------------------------------------------------------------------
// Grammar

TEST(FaultPlanParse, EmptyAndCommentOnlySpecsAreEmptyPlans) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("   \n\t ").empty());
  EXPECT_TRUE(FaultPlan::parse("# crash server 0 — just a comment").empty());
  EXPECT_TRUE(FaultPlan::parse("; ;\n#x\n;").empty());
  EXPECT_EQ(FaultPlan::parse("").window_start(), 0);
  EXPECT_EQ(FaultPlan::parse("").window_end(), 0);
}

TEST(FaultPlanParse, ParsesEveryEventKind) {
  const FaultPlan plan = FaultPlan::parse(
      "at 5s crash server 0; at 10s recover server 0\n"
      "at 6s slow server 3 x8.5 # mid-episode degradation\n"
      "at 7s fail accel 2; at 8s restore accel 2\n"
      "at 7s fail rsnode 49; at 9s recover rsnode 49\n"
      "at 1s link-down 16 48; at 2s link-up 16 48");
  ASSERT_EQ(plan.size(), 9u);
  // Sorted by time, stable for equal times.
  EXPECT_EQ(plan.events().front().op, FaultOp::kLinkDown);
  EXPECT_EQ(plan.events().front().index, 16);
  EXPECT_EQ(plan.events().front().peer, 48);
  EXPECT_EQ(plan.window_start(), sim::seconds(1));
  EXPECT_EQ(plan.window_end(), sim::seconds(10));

  int slow = 0;
  for (const sim::FaultEvent& e : plan.events()) {
    if (e.op == FaultOp::kSlow) {
      ++slow;
      EXPECT_EQ(e.unit, FaultUnit::kServer);
      EXPECT_EQ(e.index, 3);
      EXPECT_DOUBLE_EQ(e.factor, 8.5);
    }
  }
  EXPECT_EQ(slow, 1);
}

TEST(FaultPlanParse, TimeUnitsAndOptionalAt) {
  const FaultPlan plan = FaultPlan::parse(
      "1500000ns crash server 1; at 1500us recover server 1;"
      "at 1.5ms crash server 2; 0.0015s recover server 2");
  ASSERT_EQ(plan.size(), 4u);
  for (const sim::FaultEvent& e : plan.events()) {
    EXPECT_EQ(e.at, sim::micros(1500)) << "all four spellings are 1.5ms";
  }
}

TEST(FaultPlanParse, EqualTimeEventsKeepTextualOrder) {
  const FaultPlan plan = FaultPlan::parse(
      "at 5s crash server 0; at 5s slow server 3 x8; at 5s crash server 1");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].index, 0);
  EXPECT_EQ(plan.events()[1].op, FaultOp::kSlow);
  EXPECT_EQ(plan.events()[2].index, 1);
}

TEST(FaultPlanParse, RejectsMalformedEntries) {
  // Missing time unit: ambiguous, always an error.
  EXPECT_THROW(FaultPlan::parse("at 5 crash server 0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash server 0"), std::invalid_argument);
  // Unknown verb / unit.
  EXPECT_THROW(FaultPlan::parse("at 5s explode server 0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 5s crash toaster 0"),
               std::invalid_argument);
  // slow needs a positive factor ("x8" and bare "8" both parse).
  EXPECT_THROW(FaultPlan::parse("at 5s slow server 0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 5s slow server 0 x0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("at 5s slow server 0 xfast"),
               std::invalid_argument);
  // link ops need two endpoints.
  EXPECT_THROW(FaultPlan::parse("at 5s link-down 16"),
               std::invalid_argument);
  // Trailing junk after a well-formed entry.
  EXPECT_THROW(FaultPlan::parse("at 5s crash server 0 extra"),
               std::invalid_argument);
  // A missing plan file surfaces as the same error class.
  EXPECT_THROW(FaultPlan::parse("@/nonexistent/fault.plan"),
               std::invalid_argument);
}

TEST(FaultPlanParse, LoadsPlanFromFile) {
  const std::string path = ::testing::TempDir() + "/fault_plan_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# committed failover scenario\n"
             "at 5s crash server 0\n"
             "at 10s recover server 0\n",
             f);
  std::fclose(f);
  const FaultPlan plan = FaultPlan::parse("@" + path);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.window_start(), sim::seconds(5));
  EXPECT_EQ(plan.window_end(), sim::seconds(10));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Experiment-level determinism

// FNV-1a over the merged result (mirrors golden_digest_test.cpp).
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

// `include_fault` adds the fault-phase outputs; the zero-fault golden
// comparison must hash exactly what golden_digest_test.cpp hashes.
std::uint64_t result_digest(const harness::ExperimentResult& res,
                            bool include_fault = true) {
  Digest d;
  d.add_u64(res.latencies_ms.count());
  for (double s : res.latencies_ms.samples()) d.add_double(s);
  d.add_u64(res.issued);
  d.add_u64(res.completed);
  d.add_u64(res.redundant);
  d.add_u64(res.cancels);
  d.add_double(res.avg_forwards);
  d.add_double(res.wire_bytes_per_request);
  d.add_double(res.load_oscillation);
  d.add_u64(static_cast<std::uint64_t>(res.rsnodes));
  d.add_bytes(res.plan_method.data(), res.plan_method.size());
  d.add_u64(static_cast<std::uint64_t>(res.plans_deployed));
  d.add_u64(res.drs_groups);
  if (include_fault) {
    // Fault-specific outputs must be partition-invariant too.
    d.add_u64(res.fault.events_fired);
    for (int p = 0; p < 3; ++p) {
      d.add_u64(res.fault.latency_ms[p].count());
      for (double s : res.fault.latency_ms[p].samples()) d.add_double(s);
    }
  }
  return d.value();
}

// The golden cell (golden_digest_test.cpp) with the committed failover
// plan scaled into its ~440 ms nominal duration: crash at 1/3, recover
// at 2/3 of the run, matching the shape of bench/fig_failover's plan.
harness::ExperimentConfig faulted_config() {
  harness::ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts, 4 pods — shards=4 is a real partition
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 2000;
  cfg.repeats = 2;
  cfg.seed = 17;
  cfg.jobs = 1;
  cfg.fault_plan =
      "at 0.15s crash server 0; at 0.15s slow server 3 x8; "
      "at 0.3s recover server 0; at 0.3s slow server 3 x1";
  return cfg;
}

struct ShardJobCase {
  int shards;
  int jobs;
};

class FaultDeterminismTest : public ::testing::TestWithParam<ShardJobCase> {};

TEST_P(FaultDeterminismTest, FaultedDigestMatchesSerialBaseline) {
  // Baseline: serial core, serial repeats.
  harness::ExperimentConfig cfg = faulted_config();
  const harness::ExperimentResult base =
      harness::run_experiment(harness::Scheme::kNetRSIlp, cfg);
  EXPECT_TRUE(base.fault.enabled);
  EXPECT_GT(base.fault.events_fired, 0u);
  EXPECT_GT(base.issued, base.completed)
      << "a crashed server must lose at least some in-flight requests";

  const ShardJobCase sj = GetParam();
  cfg.shards = sj.shards;
  cfg.jobs = sj.jobs;
  const harness::ExperimentResult out =
      harness::run_experiment(harness::Scheme::kNetRSIlp, cfg);
  EXPECT_EQ(result_digest(base), result_digest(out))
      << "fault timing diverged at shards=" << sj.shards
      << " jobs=" << sj.jobs;
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByJobs, FaultDeterminismTest,
    ::testing::Values(ShardJobCase{1, 4}, ShardJobCase{4, 1},
                      ShardJobCase{4, 4}),
    [](const auto& info) {
      return "shards" + std::to_string(info.param.shards) + "_jobs" +
             std::to_string(info.param.jobs);
    });

// Recorded goldens from golden_digest_test.cpp: a zero-fault plan (empty
// or comment-only) must not perturb a single bit of the existing cells.
TEST(FaultZeroPlan, ReproducesRecordedGoldenDigests) {
  struct Case {
    harness::Scheme scheme;
    std::uint64_t expected;
  };
  const Case cases[] = {
      {harness::Scheme::kCliRS, 0x22129A79E79D7970ULL},
      {harness::Scheme::kNetRSToR, 0x3A2BD8D30D7BB217ULL},
  };
  for (const char* plan : {"", "  # no faults today\n;"}) {
    for (const Case& c : cases) {
      harness::ExperimentConfig cfg;
      cfg.fat_tree_k = 4;
      cfg.num_servers = 5;
      cfg.num_clients = 8;
      cfg.total_requests = 2000;
      cfg.repeats = 2;
      cfg.seed = 17;
      cfg.jobs = 1;
      cfg.fault_plan = plan;
      const harness::ExperimentResult res =
          harness::run_experiment(c.scheme, cfg);
      EXPECT_FALSE(res.fault.enabled);
      EXPECT_EQ(result_digest(res, /*include_fault=*/false), c.expected)
          << "zero-fault plan " << (plan[0] != '\0' ? "(comment)" : "(empty)")
          << " drifted for " << harness::scheme_name(c.scheme);
    }
  }
}

// Events targeting components the scheme does not build (rsnode/accel
// under CliRS) are counted as unbound and skipped — same plan, every
// scheme, no errors.
TEST(FaultUnboundEvents, RsnodeEventsUnderClirsAreCountedAndSkipped) {
  harness::ExperimentConfig cfg = faulted_config();
  cfg.fault_plan = "at 0.15s fail rsnode 9; at 0.3s recover rsnode 9";
  const harness::ExperimentResult res =
      harness::run_experiment(harness::Scheme::kCliRS, cfg);
  EXPECT_TRUE(res.fault.enabled);
  EXPECT_EQ(res.fault.events_fired, 0u);
  EXPECT_EQ(res.fault.events_unbound, 2u * 2u)  // 2 events x 2 repeats
      << "CliRS binds no rsnodes; both events must skip, twice";
  EXPECT_EQ(res.issued, res.completed) << "no component was actually faulted";
}

// ---------------------------------------------------------------------------
// Audit accounting (checked builds only)

TEST(FaultAudit, CrashEpisodeKeepsConservationExact) {
  if constexpr (!sim::kAuditEnabled) {
    GTEST_SKIP() << "audit counters exist only under -DNETRS_AUDIT=ON";
  }
  harness::ExperimentConfig cfg = faulted_config();
  const harness::ExperimentResult res =
      harness::run_experiment(harness::Scheme::kNetRSIlp, cfg);
  const sim::AuditSummary& a = res.audit;
  ASSERT_TRUE(a.enabled);
  EXPECT_EQ(a.violations_total, 0u)
      << "fault hooks must keep every station/conservation invariant";
  // The crash must surface in the drop ledger: queued/in-service work at
  // the crash ("server-crash") and arrivals while dark ("server-down").
  EXPECT_GT(a.drops_by_reason.count("server-down"), 0u);
  std::uint64_t dropped = 0;
  for (const auto& [reason, n] : a.drops_by_reason) dropped += n;
  EXPECT_GT(dropped, 0u);
  // Conservation identity: every injected packet is delivered, still in
  // flight at the end, or accounted in the drop ledger.
  EXPECT_EQ(a.packets_injected,
            a.packets_delivered + a.packets_in_flight_at_end)
      << "node-side drops happen after delivery, so injected == delivered "
         "+ in-flight must hold exactly through crash and recovery";
}

}  // namespace
}  // namespace netrs
