// Unit tests for the observability layer (src/obs): trace-ring
// wraparound semantics, Chrome-JSON escaping and formatting, histogram
// bucket-edge behavior, and the metrics registry's registration-ordered
// column layout plus its summary merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace netrs::obs {
namespace {

TraceEvent instant_at(sim::Time ts, std::uint64_t id) {
  TraceEvent e;
  e.name = "ev";
  e.cat = "test";
  e.phase = 'i';
  e.tid = 1;
  e.ts = ts;
  e.id = id;
  return e;
}

TEST(TraceRingTest, RetainsEventsInRecordOrderBeforeWrap) {
  TraceRing ring(4);
  ASSERT_TRUE(ring.enabled());
  for (std::uint64_t i = 0; i < 3; ++i) ring.record(instant_at(10 * i, i));
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<TraceEvent> events = ring.in_order();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].id, i);
}

TEST(TraceRingTest, WraparoundDropsOldestKeepsNewest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.record(instant_at(10 * i, i));
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const std::vector<TraceEvent> events = ring.in_order();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: ids 6,7,8,9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].id, 6u + i);
    EXPECT_EQ(events[i].ts, 10 * static_cast<sim::Time>(6 + i));
  }
}

TEST(TraceRingTest, ExactCapacityFillDoesNotDrop) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) ring.record(instant_at(i, i));
  EXPECT_EQ(ring.recorded(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<TraceEvent> events = ring.in_order();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 0u);
  EXPECT_EQ(events.back().id, 3u);
}

TEST(TraceRingTest, ZeroCapacityDisablesRecording) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.record(instant_at(1, 1));
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.in_order().empty());
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // Non-ASCII UTF-8 passes through byte-for-byte.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(ChromeTraceTest, EmitsSpansInstantsAndMetadata) {
  TraceRing ring(8);
  TraceEvent span;
  span.name = "kv.service";
  span.cat = "kv";
  span.phase = 'X';
  span.tid = 7;
  span.ts = 1500;  // 1.5 us
  span.dur = 2000;
  span.id = 42;
  span.arg0_name = "server";
  span.arg0 = 7;
  ring.record(span);
  ring.record(instant_at(3000, 43));
  ring.set_tid_name(7, "server@h7");

  TraceSnapshot snap;
  snap.events = ring.in_order();
  snap.tid_names = ring.tid_names();
  snap.recorded = ring.recorded();
  snap.dropped = ring.dropped();

  std::ostringstream os;
  write_chrome_trace(os, {snap});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"kv.service\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  // 1500 ns -> 1.5 us, 2000 ns -> 2 us, with trailing zeros trimmed.
  EXPECT_NE(out.find("\"ts\":1.5"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":2,"), std::string::npos);
  EXPECT_NE(out.find("\"req\":42"), std::string::npos);
  EXPECT_NE(out.find("\"server\":7"), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("server@h7"), std::string::npos);
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  // Instants carry the thread scope marker.
  EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);
}

TEST(HistogramTest, ValueOnBoundaryLandsInThatBucket) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucket_count(), 4u);  // 3 bounds + overflow
  h.add(1.0);   // == first bound -> bucket 0
  h.add(1.5);   // bucket 1 (le 2)
  h.add(2.0);   // == second bound -> bucket 1
  h.add(4.0);   // == last bound -> bucket 2
  h.add(4.001); // overflow
  h.add(100.0); // overflow
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 4.0 + 4.001 + 100.0);
}

TEST(HistogramTest, ValueBelowFirstBoundLandsInFirstBucket) {
  Histogram h({10.0, 20.0});
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(FormatMetricValueTest, IntegersExactOthersNineSigFigs) {
  EXPECT_EQ(format_metric_value(0.0), "0");
  EXPECT_EQ(format_metric_value(17.0), "17");
  EXPECT_EQ(format_metric_value(-3.0), "-3");
  EXPECT_EQ(format_metric_value(1.5), "1.5");
  EXPECT_EQ(format_metric_value(0.125), "0.125");
}

TEST(MetricsRegistryTest, ColumnsFollowRegistrationOrder) {
  MetricsRegistry reg;
  std::uint64_t* c = reg.counter("reqs");
  reg.gauge("depth", [] { return 3.0; });
  Histogram* h = reg.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(reg.metric_count(), 3u);

  *c = 5;
  h->add(0.5);
  h->add(9.0);
  reg.sample(1000);
  *c = 8;
  reg.sample(2000);

  const MetricsSnapshot snap = reg.snapshot();
  const std::vector<std::string> want = {
      "reqs", "depth", "lat.le_1", "lat.le_2", "lat.le_inf", "lat.count",
      "lat.sum"};
  EXPECT_EQ(snap.columns, want);
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_EQ(snap.rows[0].t, 1000);
  EXPECT_DOUBLE_EQ(snap.rows[0].values[0], 5.0);
  EXPECT_DOUBLE_EQ(snap.rows[0].values[1], 3.0);
  EXPECT_DOUBLE_EQ(snap.rows[0].values[2], 1.0);  // 0.5 in le_1
  EXPECT_DOUBLE_EQ(snap.rows[0].values[4], 1.0);  // 9.0 in overflow
  EXPECT_DOUBLE_EQ(snap.rows[0].values[5], 2.0);  // count
  EXPECT_DOUBLE_EQ(snap.rows[1].values[0], 8.0);
}

TEST(MetricsRegistryTest, SummaryMergeAcrossRepeats) {
  MetricsSnapshot a;
  a.columns = {"x", "noise"};
  a.summarize = {1, 0};
  a.rows = {{1000, {2.0, 9.0}}, {2000, {4.0, 9.0}}};
  MetricsSnapshot b = a;
  b.rows = {{1000, {6.0, 9.0}}, {2000, {8.0, 9.0}}};

  MetricsSummary sum;
  EXPECT_FALSE(sum.enabled());
  sum.merge(a);
  sum.merge(b);
  ASSERT_TRUE(sum.enabled());
  // Only the summarized column appears.
  ASSERT_EQ(sum.entries.size(), 1u);
  const MetricSummaryEntry& e = sum.entries[0];
  EXPECT_EQ(e.name, "x");
  EXPECT_EQ(e.samples, 4u);
  EXPECT_DOUBLE_EQ(e.min, 2.0);
  EXPECT_DOUBLE_EQ(e.max, 8.0);
  EXPECT_DOUBLE_EQ(e.mean, 5.0);
  EXPECT_DOUBLE_EQ(e.last, 8.0);
}

TEST(MetricsCsvTest, LongFormatWithRepeatColumn) {
  MetricsSnapshot snap;
  snap.columns = {"a", "b"};
  snap.summarize = {1, 1};
  snap.rows = {{5000, {1.0, 2.5}}};

  std::ostringstream os;
  write_metrics_csv(os, {snap, snap});
  const std::string out = os.str();
  EXPECT_NE(out.find("repeat,time_us,metric,value\n"), std::string::npos);
  EXPECT_NE(out.find("0,5,a,1\n"), std::string::npos);
  EXPECT_NE(out.find("0,5,b,2.5\n"), std::string::npos);
  EXPECT_NE(out.find("1,5,a,1\n"), std::string::npos);
}

TEST(ObserverTest, TracingOffMakesSpanRecordingFree) {
  ObsConfig cfg;
  cfg.metrics_path = "unused.csv";  // metrics on, tracing off
  Observer obs(cfg);
  EXPECT_FALSE(obs.tracing());
  EXPECT_TRUE(obs.metering());
  // Safe no-op even with tracing disabled (metrics-only runs still call
  // through the same instrumentation sites).
  obs.span("x", "t", 1, 0, 10);
  obs.instant("y", "t", 1, 5);
  EXPECT_EQ(obs.ring().recorded(), 0u);
}

TEST(ObserverTest, SnapshotCarriesCountersAndNames) {
  ObsConfig cfg;
  cfg.trace_path = "unused.json";
  cfg.trace_capacity = 2;
  Observer obs(cfg);
  EXPECT_TRUE(obs.tracing());
  obs.instant("a", "t", 3, 1);
  obs.instant("b", "t", 3, 2);
  obs.instant("c", "t", 3, 3);
  obs.set_tid_name(3, "sw3");
  const TraceSnapshot snap = obs.take_trace();
  EXPECT_EQ(snap.recorded, 3u);
  EXPECT_EQ(snap.dropped, 1u);
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(std::string(snap.events[0].name), "b");
  ASSERT_EQ(snap.tid_names.count(3), 1u);
  EXPECT_EQ(snap.tid_names.at(3), "sw3");
}

}  // namespace
}  // namespace netrs::obs
