#include "netrs/packet_format.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace netrs::core {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(MagicTest, ConstantsAreDistinct) {
  EXPECT_NE(kMagicRequest, kMagicResponse);
  EXPECT_NE(kMagicRequest, kMagicMonitor);
  EXPECT_NE(kMagicResponse, kMagicMonitor);
}

TEST(MagicTest, FIsInvolutiveAndCollisionFree) {
  for (Magic m : {kMagicRequest, kMagicResponse, kMagicMonitor}) {
    EXPECT_EQ(magic_f_inverse(magic_f(m)), m);
    EXPECT_NE(magic_f(m), kMagicRequest);
    EXPECT_NE(magic_f(m), kMagicResponse);
    EXPECT_NE(magic_f(m), kMagicMonitor);
  }
}

TEST(MagicTest, Classification) {
  EXPECT_EQ(classify(kMagicRequest), PacketKind::kNetRSRequest);
  EXPECT_EQ(classify(kMagicResponse), PacketKind::kNetRSResponse);
  EXPECT_EQ(classify(kMagicMonitor), PacketKind::kMonitorOnly);
  EXPECT_EQ(classify(magic_f(kMagicResponse)), PacketKind::kOther);
  EXPECT_EQ(classify(magic_f(kMagicMonitor)), PacketKind::kOther);
  EXPECT_EQ(classify(0), PacketKind::kOther);
}

TEST(PacketFormatTest, RequestRoundTrip) {
  RequestHeader h;
  h.rid = 0x1234;
  h.mf = kMagicRequest;
  h.rv = 0xBEEF;
  h.rgid = 0xABCDEF;
  const auto app = bytes({1, 2, 3, 4});
  const auto p = encode_request(h, app);
  EXPECT_EQ(p.size(), kRequestHeaderBytes + 4);

  const auto back = decode_request(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rid, h.rid);
  EXPECT_EQ(back->mf, h.mf);
  EXPECT_EQ(back->rv, h.rv);
  EXPECT_EQ(back->rgid, h.rgid);
  const auto got_app = request_app_payload(p);
  ASSERT_EQ(got_app.size(), 4u);
  EXPECT_EQ(got_app[0], std::byte{1});
  EXPECT_EQ(got_app[3], std::byte{4});
}

TEST(PacketFormatTest, ResponseRoundTrip) {
  ResponseHeader h;
  h.rid = 7;
  h.mf = kMagicResponse;
  h.rv = 99;
  h.sm = net::SourceMarker{3, 12};
  h.status.queue_size = 42;
  h.status.service_time_ns = 4'000'000;
  const auto app = bytes({9, 8});
  const auto p = encode_response(h, app);
  EXPECT_EQ(p.size(), kResponseHeaderBytes + 2);

  const auto back = decode_response(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rid, 7);
  EXPECT_EQ(back->mf, kMagicResponse);
  EXPECT_EQ(back->rv, 99);
  EXPECT_EQ(back->sm, (net::SourceMarker{3, 12}));
  EXPECT_EQ(back->status.queue_size, 42u);
  EXPECT_EQ(back->status.service_time_ns, 4'000'000u);
  EXPECT_EQ(response_app_payload(p).size(), 2u);
}

TEST(PacketFormatTest, HeaderSizesMatchFig2) {
  // Request: RID(2) + MF(6) + RV(2) + RGID(3) = 13 bytes.
  EXPECT_EQ(kRequestHeaderBytes, 13u);
  // Response: RID(2) + MF(6) + RV(2) + SM(4) + SSL(2) + SS(8) = 24 bytes.
  EXPECT_EQ(kResponseHeaderBytes, 24u);
}

TEST(PacketFormatTest, DecodeRejectsShortBuffers) {
  EXPECT_FALSE(decode_request(bytes({1, 2, 3})).has_value());
  EXPECT_FALSE(decode_response(bytes({1, 2, 3, 4, 5})).has_value());
  EXPECT_FALSE(peek_magic(bytes({1, 2})).has_value());
  EXPECT_FALSE(peek_rid(bytes({1})).has_value());
}

TEST(PacketFormatTest, DecodeResponseRejectsBadStatusLength) {
  ResponseHeader h;
  auto p = encode_response(h, {});
  // Corrupt SSL (offset 14, little-endian u16).
  p[14] = std::byte{0xFF};
  EXPECT_FALSE(decode_response(p).has_value());
}

TEST(PacketFormatTest, InPlaceFieldRewrites) {
  RequestHeader h;
  h.rid = 1;
  h.rv = 2;
  h.rgid = 3;
  auto p = encode_request(h, {});

  set_rid(p, 0xFFFF);
  set_rv(p, 777);
  set_magic(p, magic_f(kMagicResponse));

  const auto back = decode_request(p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rid, kRidIllegal);
  EXPECT_EQ(back->rv, 777);
  EXPECT_EQ(back->mf, magic_f(kMagicResponse));
  EXPECT_EQ(back->rgid, 3u);  // untouched
  EXPECT_EQ(peek_rv(p), 777);
  EXPECT_EQ(*peek_rid(p), kRidIllegal);
}

TEST(PacketFormatTest, SourceMarkerRewriteOnResponse) {
  ResponseHeader h;
  auto p = encode_response(h, {});
  set_source_marker(p, net::SourceMarker{15, 7});
  const auto sm = peek_source_marker(p);
  ASSERT_TRUE(sm.has_value());
  EXPECT_EQ(sm->pod, 15);
  EXPECT_EQ(sm->rack, 7);
}

TEST(PacketFormatTest, MagicPeekMatchesHeader) {
  RequestHeader h;
  h.mf = kMagicRequest;
  const auto p = encode_request(h, {});
  EXPECT_EQ(*peek_magic(p), kMagicRequest);
}

TEST(PacketFormatTest, ServerMagicAlgebra) {
  // Selector labels a rewritten request f(Mresp); the server answers with
  // f^-1 of that, which must be exactly Mresp (a NetRS response).
  EXPECT_EQ(magic_f_inverse(magic_f(kMagicResponse)), kMagicResponse);
  // A DRS request labelled f(Mmon) yields an Mmon response: visible to
  // monitors, not steered.
  EXPECT_EQ(classify(magic_f_inverse(magic_f(kMagicMonitor))),
            PacketKind::kMonitorOnly);
  // A plain Mreq that never met a selector yields a non-NetRS response.
  EXPECT_EQ(classify(magic_f_inverse(kMagicRequest)), PacketKind::kOther);
}

TEST(PacketFormatTest, RandomRoundTripProperty) {
  sim::Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    RequestHeader rq;
    rq.rid = static_cast<RsNodeId>(rng.uniform(65536));
    rq.mf = rng.next_u64() & kMagicMask;
    rq.rv = static_cast<std::uint16_t>(rng.uniform(65536));
    rq.rgid = static_cast<ReplicaGroupId>(rng.uniform(kMaxReplicaGroupId + 1));
    std::vector<std::byte> app(rng.uniform(64));
    for (auto& b : app) b = static_cast<std::byte>(rng.uniform(256));
    const auto p = encode_request(rq, app);
    const auto back = decode_request(p);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->rid, rq.rid);
    EXPECT_EQ(back->mf, rq.mf);
    EXPECT_EQ(back->rv, rq.rv);
    EXPECT_EQ(back->rgid, rq.rgid);
    const auto got = request_app_payload(p);
    ASSERT_EQ(got.size(), app.size());
    for (std::size_t j = 0; j < app.size(); ++j) EXPECT_EQ(got[j], app[j]);
  }
}

}  // namespace
}  // namespace netrs::core
