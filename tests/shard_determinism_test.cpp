// Sharded-core determinism guard (DESIGN.md §4.10): the partitioned PDES
// core must be *behaviorally invisible*. For every scheme the golden
// digest — covering the bit pattern of every measured latency plus all
// summary statistics — must be identical across --shards {1, 2, 4} and
// --jobs {1, 4}, and equal to the recorded serial-core values (the same
// constants golden_digest_test pins). A divergence means a cross-shard
// packet was reordered, a window boundary leaked, or an RNG stream moved.
//
// Also covered here:
//   - cross-pod packet conservation under -DNETRS_AUDIT=ON with the
//     per-shard slot ledgers merged (skipped in plain builds), and
//   - the fabric's fail-fast lookahead validation (satellite: every
//     switch/host link must be at least the lookahead window long).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "harness/experiment.hpp"
#include "net/fabric.hpp"
#include "net/fat_tree.hpp"
#include "sim/audit.hpp"
#include "sim/shard.hpp"

namespace netrs::harness {
namespace {

// FNV-1a over raw bytes (same digest as golden_digest_test so the pinned
// constants are directly comparable).
class Digest {
 public:
  void add_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001B3ULL;
    }
  }
  void add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }
  void add_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add_u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

ExperimentConfig digest_config() {
  ExperimentConfig cfg;
  cfg.fat_tree_k = 4;  // 16 hosts, 4 pods => up to 4 shards
  cfg.num_servers = 5;
  cfg.num_clients = 8;
  cfg.total_requests = 2000;
  cfg.repeats = 2;
  cfg.seed = 17;
  cfg.jobs = 1;
  return cfg;
}

std::uint64_t result_digest(const ExperimentResult& res) {
  Digest d;
  d.add_u64(res.latencies_ms.count());
  for (double s : res.latencies_ms.samples()) d.add_double(s);
  d.add_u64(res.issued);
  d.add_u64(res.completed);
  d.add_u64(res.redundant);
  d.add_u64(res.cancels);
  d.add_double(res.avg_forwards);
  d.add_double(res.wire_bytes_per_request);
  d.add_double(res.load_oscillation);
  d.add_u64(static_cast<std::uint64_t>(res.rsnodes));
  d.add_bytes(res.plan_method.data(), res.plan_method.size());
  d.add_u64(static_cast<std::uint64_t>(res.plans_deployed));
  d.add_u64(res.drs_groups);
  return d.value();
}

struct ShardCase {
  Scheme scheme;
  std::uint64_t expected;  // serial-core golden digest
};

// Identical to golden_digest_test's recorded values: the sharded core is
// required to reproduce the serial core bit-for-bit at every shard count.
constexpr ShardCase kCases[] = {
    {Scheme::kCliRS, 0x22129A79E79D7970ULL},
    {Scheme::kCliRSR95Cancel, 0x0891AE823F6B4F89ULL},
    {Scheme::kNetRSToR, 0x3A2BD8D30D7BB217ULL},
    {Scheme::kNetRSIlp, 0xE5DF15E64FB0AFFBULL},
};

class ShardDeterminismTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardDeterminismTest, DigestIdenticalAcrossShardAndJobCounts) {
  const ShardCase sc = GetParam();
  for (const int shards : {1, 2, 4}) {
    for (const int jobs : {1, 4}) {
      ExperimentConfig cfg = digest_config();
      cfg.shards = shards;
      cfg.jobs = jobs;
      const ExperimentResult res = run_experiment(sc.scheme, cfg);
      EXPECT_EQ(result_digest(res), sc.expected)
          << scheme_name(sc.scheme) << " diverged at shards=" << shards
          << " jobs=" << jobs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MixedSchemes, ShardDeterminismTest, ::testing::ValuesIn(kCases),
    [](const auto& info) {
      std::string n = scheme_name(info.param.scheme);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// Every aggregation-to-core hop crosses a shard boundary when shards ==
// pods, so a healthy audited run exercises the cross-shard inbox path end
// to end; the merged per-shard ledgers must balance with zero violations.
TEST(ShardAuditTest, CrossPodConservationHoldsWithMergedLedgers) {
  if constexpr (!sim::kAuditEnabled) {
    GTEST_SKIP() << "auditor compiled out; configure -DNETRS_AUDIT=ON";
  }
  ExperimentConfig cfg = digest_config();
  cfg.shards = 4;
  const ExperimentResult res = run_experiment(Scheme::kNetRSToR, cfg);
  EXPECT_TRUE(res.audit.enabled);
  EXPECT_EQ(res.audit.violations_total, 0u)
      << (res.audit.violations.empty()
              ? std::string()
              : res.audit.violations.front().detail);
  EXPECT_GT(res.audit.checks, 0u);
  EXPECT_GT(res.audit.packets_injected, 0u);
  // Conservation over the merged shard ledgers: everything injected was
  // delivered or explicitly tallied as still parked at the end.
  EXPECT_EQ(res.audit.packets_injected,
            res.audit.packets_delivered + res.audit.packets_in_flight_at_end);
}

// Satellite: a link shorter than the lookahead window would let a packet
// arrive inside an already-executed window, so the fabric refuses to build.
TEST(ShardLookaheadTest, FabricRejectsLinksShorterThanLookahead) {
  const net::FatTree topo(4);
  net::FabricConfig cfg;

  {
    sim::ShardGroup group(2, sim::micros(30));
    cfg.switch_link_latency = sim::micros(10);  // < 30 us lookahead
    cfg.host_link_latency = sim::micros(30);
    EXPECT_THROW(net::Fabric(group, topo, cfg), std::invalid_argument);
  }
  {
    sim::ShardGroup group(2, sim::micros(30));
    cfg.switch_link_latency = sim::micros(30);
    cfg.host_link_latency = sim::micros(5);  // < 30 us lookahead
    EXPECT_THROW(net::Fabric(group, topo, cfg), std::invalid_argument);
  }
  {
    // Serial degenerate mode never runs conservative sync, so short links
    // are fine there — exactly today's single-queue fabric.
    sim::ShardGroup group(1, sim::micros(30));
    cfg.switch_link_latency = sim::micros(10);
    cfg.host_link_latency = sim::micros(5);
    EXPECT_NO_THROW(net::Fabric(group, topo, cfg));
  }
  {
    // Boundary: latency == lookahead is allowed (arrival lands exactly on
    // the next window's horizon, which run_windows executes strictly
    // after publishing).
    sim::ShardGroup group(4, sim::micros(30));
    cfg.switch_link_latency = sim::micros(30);
    cfg.host_link_latency = sim::micros(30);
    EXPECT_NO_THROW(net::Fabric(group, topo, cfg));
  }
}

}  // namespace
}  // namespace netrs::harness
