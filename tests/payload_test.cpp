// Unit tests for net::PayloadBuffer, the small-buffer payload type behind
// net::Packet. The inline/heap boundary, vector-parity zero-fill on
// resize, and move semantics are all load-bearing for the allocation-free
// forwarding path.
#include "net/payload.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <utility>

namespace netrs::net {
namespace {

TEST(PayloadBufferTest, DefaultIsEmptyAndInline) {
  PayloadBuffer p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.is_inline());
  EXPECT_EQ(p.capacity(), PayloadBuffer::kInlineCapacity);
}

TEST(PayloadBufferTest, SizedConstructorZeroFills) {
  PayloadBuffer p(42);
  ASSERT_EQ(p.size(), 42u);
  EXPECT_TRUE(p.is_inline());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i], std::byte{0}) << "byte " << i;
  }
}

TEST(PayloadBufferTest, ResizeZeroFillsNewBytesLikeVector) {
  PayloadBuffer p;
  p.resize(8);
  p.assign(8, std::byte{0xFF});
  p.resize(4);   // shrink: keeps the first 4 bytes
  p.resize(16);  // regrow: bytes 4..15 must be zero, not stale 0xFF
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p[i], std::byte{0xFF});
  for (std::size_t i = 4; i < 16; ++i) EXPECT_EQ(p[i], std::byte{0});
}

TEST(PayloadBufferTest, StaysInlineUpToInlineCapacity) {
  PayloadBuffer p(PayloadBuffer::kInlineCapacity);
  EXPECT_TRUE(p.is_inline());
}

TEST(PayloadBufferTest, SpillsToHeapBeyondInlineCapacity) {
  PayloadBuffer p(PayloadBuffer::kInlineCapacity);
  p.assign(PayloadBuffer::kInlineCapacity, std::byte{0xAB});
  p.resize(PayloadBuffer::kInlineCapacity + 1);
  EXPECT_FALSE(p.is_inline());
  // Contents survive the spill.
  for (std::size_t i = 0; i < PayloadBuffer::kInlineCapacity; ++i) {
    EXPECT_EQ(p[i], std::byte{0xAB}) << "byte " << i;
  }
  EXPECT_EQ(p[PayloadBuffer::kInlineCapacity], std::byte{0});
}

TEST(PayloadBufferTest, ShrinkNeverReleasesCapacity) {
  PayloadBuffer p(200);
  const std::size_t cap = p.capacity();
  EXPECT_GE(cap, 200u);
  p.resize(2);
  EXPECT_EQ(p.capacity(), cap);
  EXPECT_FALSE(p.is_inline());  // heap block kept warm for reuse
}

TEST(PayloadBufferTest, CopyIsDeep) {
  PayloadBuffer a(10);
  a.assign(10, std::byte{7});
  PayloadBuffer b(a);
  b[0] = std::byte{9};
  EXPECT_EQ(a[0], std::byte{7});
  EXPECT_EQ(b[0], std::byte{9});
  EXPECT_EQ(a.size(), b.size());
}

TEST(PayloadBufferTest, MoveOfInlineBufferCopiesBytes) {
  PayloadBuffer a(10);
  a.assign(10, std::byte{5});
  PayloadBuffer b(std::move(a));
  ASSERT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.is_inline());
  EXPECT_EQ(b[9], std::byte{5});
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd state
}

TEST(PayloadBufferTest, MoveOfHeapBufferStealsPointer) {
  PayloadBuffer a(300);
  a.assign(300, std::byte{3});
  const std::byte* block = a.data();
  PayloadBuffer b(std::move(a));
  EXPECT_EQ(b.data(), block);  // no copy, no allocation
  EXPECT_EQ(b.size(), 300u);
  EXPECT_TRUE(a.is_inline());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
}

TEST(PayloadBufferTest, MoveAssignReleasesPreviousHeapBlock) {
  PayloadBuffer a(300);
  PayloadBuffer b(400);
  b = std::move(a);  // must free b's old block (ASan would catch a leak)
  EXPECT_EQ(b.size(), 300u);
}

TEST(PayloadBufferTest, EqualityComparesContents) {
  PayloadBuffer a(5);
  PayloadBuffer b(5);
  EXPECT_EQ(a, b);
  b[2] = std::byte{1};
  EXPECT_NE(a, b);
  PayloadBuffer c(6);
  EXPECT_NE(a, c);
}

TEST(PayloadBufferTest, SpanConversionsSeeLiveBytes) {
  PayloadBuffer p(4);
  p[1] = std::byte{0x11};
  std::span<const std::byte> ro = p;
  ASSERT_EQ(ro.size(), 4u);
  EXPECT_EQ(ro[1], std::byte{0x11});
  std::span<std::byte> rw = p;
  rw[2] = std::byte{0x22};
  EXPECT_EQ(p[2], std::byte{0x22});
}

TEST(PayloadBufferTest, ClearKeepsCapacity) {
  PayloadBuffer p(100);
  const std::size_t cap = p.capacity();
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.capacity(), cap);
}

}  // namespace
}  // namespace netrs::net
