// System-level behavioral properties of the C3 algorithm driving a real
// client/server loop: it must discover and exploit performance asymmetry,
// and it must react to a mid-run performance flip — the exact capabilities
// replica selection needs against the paper's fluctuating servers.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"

namespace netrs::kv {
namespace {

class C3BehaviorRig : public ::testing::Test {
 protected:
  // k = 8: four hosts per rack, so three servers + spare fit in one rack.
  C3BehaviorRig() : topo(8), fabric(sim, topo, net::FabricConfig{}) {
    for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
      switches.push_back(std::make_unique<net::Switch>(fabric, sw));
      fabric.attach(sw, switches.back().get());
    }
    // Three servers in one rack => identical network distance from the
    // client; any preference C3 develops is purely performance-driven.
    server_hosts = {topo.host_id(0, 0, 0), topo.host_id(0, 0, 1),
                    topo.host_id(0, 0, 2)};
    ring = std::make_unique<ConsistentHashRing>(server_hosts, 3, 8);
    zipf = std::make_unique<sim::ZipfDistribution>(1000, 0.99);
  }

  Server& add_server(net::HostId h, sim::Duration mean) {
    ServerConfig cfg;
    cfg.fluctuate = false;
    cfg.parallelism = 2;
    cfg.mean_service_time = mean;
    servers.push_back(
        std::make_unique<Server>(fabric, h, cfg, sim::Rng(h)));
    return *servers.back();
  }

  /// Starts a fresh C3 client on rack (0,1) slot `slot` (each phase uses
  /// its own host: a NodeId may only be attached once).
  std::map<net::HostId, int>& run_client(double rate, sim::Duration span,
                                         int slot = 0) {
    ClientConfig ccfg;
    ccfg.arrival_rate = rate;
    ccfg.selector.algorithm = "c3";
    ccfg.selector.c3.concurrency = 1.0;
    client = std::make_unique<Client>(fabric, topo.host_id(0, 1, slot), ccfg,
                                      *ring, *zipf, sim::Rng(99));
    client->set_completion_callback(
        [this](const Client::Completion& c) { ++hits[c.server]; });
    client->start();
    sim.run_until(sim.now() + span);
    client->stop();
    sim.run_until(sim.now() + sim::millis(200));
    return hits;
  }

  sim::Simulator sim;
  net::FatTree topo;
  net::Fabric fabric;
  std::vector<std::unique_ptr<net::Switch>> switches;
  std::vector<net::HostId> server_hosts;
  std::unique_ptr<ConsistentHashRing> ring;
  std::unique_ptr<sim::ZipfDistribution> zipf;
  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Client> client;
  std::map<net::HostId, int> hits;
};

TEST_F(C3BehaviorRig, ExploitsFastServer) {
  add_server(server_hosts[0], sim::millis(8));  // slow
  add_server(server_hosts[1], sim::millis(1));  // fast
  add_server(server_hosts[2], sim::millis(8));  // slow
  run_client(/*rate=*/500.0, sim::seconds(2));
  const int total = hits[server_hosts[0]] + hits[server_hosts[1]] +
                    hits[server_hosts[2]];
  ASSERT_GT(total, 500);
  // The fast server must absorb the clear majority of the load.
  EXPECT_GT(hits[server_hosts[1]], total * 0.55)
      << "fast=" << hits[server_hosts[1]] << " of " << total;
  // But not all of it: the cubic queue penalty must spill load once its
  // queue builds (otherwise C3 would overload the fast replica).
  EXPECT_GT(hits[server_hosts[0]] + hits[server_hosts[2]], total * 0.02);
}

TEST_F(C3BehaviorRig, AdaptsWhenPerformanceFlips) {
  Server& a = add_server(server_hosts[0], sim::millis(1));
  add_server(server_hosts[1], sim::millis(8));
  add_server(server_hosts[2], sim::millis(8));
  run_client(500.0, sim::seconds(1));
  const int a_first = hits[server_hosts[0]];
  const int b_first = hits[server_hosts[1]];
  EXPECT_GT(a_first, b_first);
  (void)a;

  // Flip: the fast server becomes the slowest. (ServerConfig is captured
  // at construction; emulate the flip by replacing the server's role via
  // fresh servers is invasive, so instead use fluctuation-free servers and
  // verify with a *new* measurement phase that C3 re-learns from the
  // changed queue/latency it observes when the fast server saturates.)
  hits.clear();
  // Saturate server A with background load from a second client so its
  // queue explodes; C3 must shift away.
  ClientConfig bg;
  bg.arrival_rate = 1800.0;  // ~2x server A's 2-slot 1ms capacity
  bg.selector.algorithm = "round-robin";
  // Background client hammers only server A's replica group... use a
  // dedicated ring containing just server A.
  std::vector<net::HostId> only_a = {server_hosts[0]};
  ConsistentHashRing ring_a(only_a, 1, 4);
  Client background(fabric, topo.host_id(0, 1, 1), bg, ring_a, *zipf,
                    sim::Rng(123));
  background.start();
  run_client(500.0, sim::seconds(2), /*slot=*/2);
  background.stop();
  const int a_second = hits[server_hosts[0]];
  const int total = a_second + hits[server_hosts[1]] + hits[server_hosts[2]];
  ASSERT_GT(total, 500);
  // A is drowning in background load; C3 must send most traffic elsewhere.
  EXPECT_LT(a_second, total / 2);
}

TEST_F(C3BehaviorRig, BalancesEqualServers) {
  for (net::HostId h : server_hosts) add_server(h, sim::millis(2));
  run_client(600.0, sim::seconds(2));
  const int total = hits[server_hosts[0]] + hits[server_hosts[1]] +
                    hits[server_hosts[2]];
  ASSERT_GT(total, 800);
  for (net::HostId h : server_hosts) {
    EXPECT_GT(hits[h], total / 6) << "server " << h << " starved";
    EXPECT_LT(hits[h], total * 2 / 3) << "server " << h << " herded";
  }
}

}  // namespace
}  // namespace netrs::kv
