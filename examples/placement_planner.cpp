// Example: the RSNodes-placement planner (§III) as a standalone tool.
//
// Builds the placement problem for a k-ary fat-tree under a given system
// utilization and extra-hop budget, solves it with the ILP (and the other
// methods for comparison), and prints the Replica Selection Plan the NetRS
// controller would deploy — including the per-tier RSNode breakdown the
// paper quotes ("an RSP from NetRS-ILP consists of 6 RSNodes on
// aggregation switches and 1 RSNode on a core switch").
//
// Usage: placement_planner [k] [utilization] [hop_budget_fraction]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "net/fat_tree.hpp"
#include "netrs/placement.hpp"
#include "sim/rng.hpp"

using namespace netrs;

namespace {

core::PlacementProblem build_problem(const net::FatTree& topo,
                                     double utilization,
                                     double hop_fraction) {
  // Paper parameters: Ns=100 servers x Np=4 slots at tkv=4ms.
  const double aggregate = utilization * 100.0 * 4.0 / 0.004;
  core::PlacementProblem p;
  sim::Rng rng(1);
  for (int r = 0; r < topo.racks(); ++r) {
    core::GroupDemand g;
    g.id = static_cast<core::GroupId>(r);
    g.pod = r / topo.tors_per_pod();
    g.rack = r % topo.tors_per_pod();
    // Random client/server placement makes ~94% of traffic inter-pod.
    const double load =
        aggregate / topo.racks() * (0.8 + 0.4 * rng.next_double());
    g.tier_traffic[0] = load * 0.94;
    g.tier_traffic[1] = load * 0.05;
    g.tier_traffic[2] = load * 0.01;
    p.groups.push_back(g);
  }
  core::RsNodeId id = 1;
  for (net::NodeId sw : topo.all_switches()) {
    core::OperatorSpec op;
    op.id = id++;
    op.sw = sw;
    const net::SwitchCoord c = topo.coord(sw);
    op.tier = c.tier;
    op.pod = c.pod;
    op.rack = c.idx;
    // Tmax = U * cores / (request + response service) = 0.5 / 6us.
    op.t_max = 0.5 / 6e-6;
    p.operators.push_back(op);
  }
  p.extra_hop_budget = hop_fraction * aggregate;
  return p;
}

void report(const char* name, const core::PlacementProblem& p,
            const core::PlacementResult& res, double seconds) {
  std::map<net::Tier, int> per_tier;
  std::map<core::RsNodeId, net::Tier> tier_of;
  for (const auto& op : p.operators) tier_of[op.id] = op.tier;
  std::map<core::RsNodeId, int> groups_per_node;
  for (const auto& [g, rid] : res.assignment) {
    (void)g;
    ++groups_per_node[rid];
  }
  for (const auto& [rid, n] : groups_per_node) {
    (void)n;
    ++per_tier[tier_of[rid]];
  }
  std::printf(
      "%-12s %3d RSNodes (core %d, agg %d, tor %d)  hops %8.0f / %8.0f  "
      "DRS %zu  optimal=%s  %.3fs\n",
      name, res.rsnodes_used, per_tier[net::Tier::kCore],
      per_tier[net::Tier::kAgg], per_tier[net::Tier::kTor],
      res.extra_hops_used, p.extra_hop_budget, res.drs_groups.size(),
      res.proven_optimal ? "yes" : "no", seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 16;
  const double util = argc > 2 ? std::atof(argv[2]) : 0.9;
  const double frac = argc > 3 ? std::atof(argv[3]) : 0.2;

  net::FatTree topo(k);
  const core::PlacementProblem p = build_problem(topo, util, frac);
  std::printf(
      "Placement problem: %d-ary fat-tree, %zu rack groups, %zu operators, "
      "utilization %.0f%%, E = %.0f%% of the aggregate rate\n\n",
      k, p.groups.size(), p.operators.size(), util * 100.0, frac * 100.0);

  struct MethodRow {
    const char* name;
    core::PlacementMethod method;
  };
  const MethodRow methods[] = {
      {"reduced-ilp", core::PlacementMethod::kReducedIlp},
      {"greedy", core::PlacementMethod::kGreedy},
  };
  for (const auto& m : methods) {
    core::PlacementOptions opts;
    opts.method = m.method;
    // netrs-lint: allow(wall-clock): the example reports solver wall time to the user; it never feeds back into simulated results.
    const auto t0 = std::chrono::steady_clock::now();
    const core::PlacementResult res = core::solve_placement(p, opts);
    const double dt = std::chrono::duration<double>(
                          // netrs-lint: allow(wall-clock): the example reports solver wall time to the user; it never feeds back into simulated results.
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!core::validate_placement(p, res)) {
      std::printf("%-12s produced an INVALID plan!\n", m.name);
      return 1;
    }
    report(m.name, p, res, dt);
  }

  // The baseline the paper compares against: one RSNode per ToR.
  const core::PlacementResult tor = core::tor_placement(p);
  report("tor-plan", p, tor, 0.0);
  return 0;
}
