// Example: exception handling with Degraded Replica Selection (§III-C),
// driven by the declarative fault-injection engine (DESIGN.md §9,
// docs/SCENARIOS.md).
//
// Runs the NetRS-ToR cluster through a committed sim::FaultPlan that
// crashes every ToR RSNode of pods 0 and 1 at t=1.2s and restores them
// at t=2.0s. While the nodes are down the controller immediately
// degrades their traffic groups — requests from the affected racks ride
// to the client-chosen backup replica (DRS) — and on restore the next
// replan folds the nodes back in. The harness does all the wiring: the
// plan string in cfg.fault_plan is the whole fault model, and the
// pre/during/post-fault report windows plus the 100 ms latency timeline
// come back on the ExperimentResult (no hand-rolled callbacks).
//
// Swap the scheme for kNetRSIlp to watch the same plan hit a
// consolidated placement instead: events naming RSNodes outside the
// active plan are bound but have no groups to degrade, which is the
// point — one plan string is portable across schemes, and the report's
// "events fired" line tells you what actually landed.
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace netrs;

int main() {
  harness::ExperimentConfig cfg;
  cfg.fat_tree_k = 8;
  cfg.num_servers = 20;
  cfg.num_clients = 60;
  cfg.utilization = 0.70;       // ~14 000 req/s aggregate
  cfg.total_requests = 50'000;  // ~3.6 s nominal: fault sits mid-run
  cfg.repeats = 1;
  cfg.jobs = 1;
  cfg.seed = 11;
  cfg.timeline_bucket = sim::millis(100);
  cfg.obs.record_decisions = true;  // regret/staleness phase columns

  // ToR RSNode ids are switch NodeId + 1; for k=8 the ToR tier starts at
  // NodeId 48 (16 cores + 32 aggs), four ToRs per pod. Crashing the
  // eight ToR nodes of pods 0-1 degrades every traffic group behind
  // them; the paired recover events bring them back 800 ms later.
  cfg.fault_plan =
      "at 1.2s crash rsnode 49; at 1.2s crash rsnode 50; "
      "at 1.2s crash rsnode 51; at 1.2s crash rsnode 52; "
      "at 1.2s crash rsnode 53; at 1.2s crash rsnode 54; "
      "at 1.2s crash rsnode 55; at 1.2s crash rsnode 56; "
      "at 2.0s recover rsnode 49; at 2.0s recover rsnode 50; "
      "at 2.0s recover rsnode 51; at 2.0s recover rsnode 52; "
      "at 2.0s recover rsnode 53; at 2.0s recover rsnode 54; "
      "at 2.0s recover rsnode 55; at 2.0s recover rsnode 56";

  std::printf("failover_drs: NetRS-ToR, plan:\n  %s\n\n",
              cfg.fault_plan.c_str());
  const harness::ExperimentResult res =
      harness::run_experiment(harness::Scheme::kNetRSToR, cfg);

  harness::print_fault_phases("netrs-tor", res);

  std::printf("\n%-12s %10s %10s %10s\n", "window", "mean(ms)", "p99(ms)",
              "samples");
  for (std::size_t b = 0; b < res.timeline.size(); ++b) {
    if (res.timeline[b].empty()) continue;
    const double t0 = static_cast<double>(b) * res.timeline_bucket_ms;
    std::printf("%5.1f-%5.1fs %10.3f %10.3f %10zu\n", t0 / 1000.0,
                (t0 + res.timeline_bucket_ms) / 1000.0, res.timeline[b].mean(),
                res.timeline[b].percentile(0.99), res.timeline[b].count());
  }

  std::printf("\nfinal plan: %d RSNodes (%s), %zu DRS groups, %d plans "
              "deployed; %llu/%llu requests completed\n",
              res.rsnodes, res.plan_method.c_str(), res.drs_groups,
              res.plans_deployed,
              static_cast<unsigned long long>(res.completed),
              static_cast<unsigned long long>(res.issued));
  return 0;
}
