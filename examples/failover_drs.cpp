// Example: exception handling with Degraded Replica Selection (§III-C).
//
// Runs a NetRS-ILP cluster, then fails the busiest RSNode mid-run. The
// controller immediately degrades the affected traffic groups (requests
// ride to the client-chosen backup replica) and, at the next replan,
// re-consolidates onto the surviving operators. The example prints a
// latency timeline so the degradation + recovery episode is visible.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"
#include "netrs/controller.hpp"
#include "netrs/operator.hpp"
#include "rs/factory.hpp"

using namespace netrs;

int main() {
  sim::Simulator sim;
  net::FatTree topo(8);
  net::Fabric fabric(sim, topo, net::FabricConfig{});
  std::vector<std::unique_ptr<net::Switch>> switches;
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    switches.push_back(std::make_unique<net::Switch>(fabric, sw));
    fabric.attach(sw, switches.back().get());
  }

  sim::Rng root(11);
  std::vector<net::HostId> hosts(topo.host_count());
  std::iota(hosts.begin(), hosts.end(), net::HostId{0});
  root.shuffle(hosts);
  const std::vector<net::HostId> server_hosts(hosts.begin(),
                                              hosts.begin() + 20);
  const std::vector<net::HostId> client_hosts(hosts.begin() + 20,
                                              hosts.begin() + 80);

  kv::ConsistentHashRing ring(server_hosts, 3, 16);
  sim::ZipfDistribution zipf(1'000'000, 0.99);
  core::TrafficGroups groups(topo, core::GroupGranularity::kRack);

  auto directory = std::make_shared<core::RsNodeDirectory>();
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    (*directory)[static_cast<core::RsNodeId>(sw + 1)] = sw;
  }
  auto bootstrap = std::make_shared<const core::GroupRidTable>(
      groups.group_count(), core::kRidIllegal);
  std::vector<std::unique_ptr<core::NetRSOperator>> operators;
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    sim::Rng op_rng = root.child(0x900 + sw);
    operators.push_back(std::make_unique<core::NetRSOperator>(
        fabric, *switches[sw], static_cast<core::RsNodeId>(sw + 1),
        core::AcceleratorConfig{}, directory, ring.groups(),
        [&sim, op_rng]() mutable {
          rs::SelectorConfig cfg;  // C3, the paper's default
          return rs::make_selector(cfg, sim, op_rng.child("sel"));
        },
        &groups, bootstrap));
  }

  core::ControllerConfig ctrl_cfg;
  ctrl_cfg.mode = core::PlanMode::kIlp;
  ctrl_cfg.replan_interval = sim::millis(100);
  ctrl_cfg.rsp_update_interval = sim::millis(400);
  std::vector<core::NetRSOperator*> ptrs;
  for (auto& op : operators) ptrs.push_back(op.get());
  core::Controller controller(sim, topo, groups, std::move(ptrs), ctrl_cfg);
  controller.start();

  kv::ServerConfig scfg;  // paper defaults: 4ms exponential, fluctuating
  std::vector<std::unique_ptr<kv::Server>> servers;
  for (net::HostId h : server_hosts) {
    servers.push_back(
        std::make_unique<kv::Server>(fabric, h, scfg, root.child(h)));
  }

  kv::ClientConfig ccfg;
  ccfg.mode = kv::ClientMode::kNetRS;
  ccfg.arrival_rate = 18000.0 / client_hosts.size();  // ~90% utilization

  // Latency timeline: 100ms buckets.
  constexpr int kBuckets = 30;
  std::vector<sim::LatencyRecorder> timeline(kBuckets);
  std::vector<std::unique_ptr<kv::Client>> clients;
  for (net::HostId h : client_hosts) {
    clients.push_back(std::make_unique<kv::Client>(
        fabric, h, ccfg, ring, zipf, root.child(0x2000 + h)));
    clients.back()->set_completion_callback(
        [&](const kv::Client::Completion& c) {
          const auto bucket =
              static_cast<std::size_t>(sim.now() / sim::millis(100));
          if (bucket < timeline.size()) {
            timeline[bucket].add(sim::to_millis(c.latency));
          }
        });
    clients.back()->start();
  }

  // Fail the busiest RSNode at t = 1.2s; it comes back at t = 2.0s.
  core::RsNodeId victim = 0;
  sim.at(sim::seconds(1.2), [&] {
    std::uint64_t best = 0;
    for (auto& op : operators) {
      const std::uint64_t n = op->selector_node().requests_selected();
      if (n > best) {
        best = n;
        victim = op->id();
      }
    }
    std::printf("t=1.2s  FAILING RSNode %u (had selected %llu requests); "
                "its groups degrade to DRS\n",
                victim, static_cast<unsigned long long>(best));
    controller.fail_operator(victim);
  });
  sim.at(sim::seconds(2.0), [&] {
    std::printf("t=2.0s  restoring RSNode %u\n", victim);
    controller.restore_operator(victim);
  });

  sim.run_until(sim::seconds(3.0));
  for (auto& c : clients) c->stop();
  sim.run_until(sim.now() + sim::millis(100));

  std::printf("\n%-8s %10s %10s %10s %9s\n", "window", "mean(ms)", "p99(ms)",
              "samples", "RSNodes");
  for (auto& bucket : timeline) bucket.finalize();
  for (int b = 0; b < kBuckets; ++b) {
    if (timeline[b].empty()) continue;
    std::printf("%.1f-%.1fs %10.3f %10.3f %10zu\n", b / 10.0,
                (b + 1) / 10.0, timeline[b].mean(),
                timeline[b].percentile(0.99), timeline[b].count());
  }
  std::printf("\nfinal plan: %d RSNodes (%s), %zu DRS groups, %u plans "
              "deployed\n",
              controller.active_rsnodes(),
              controller.current_plan().method.c_str(),
              controller.current_plan().drs_groups.size(),
              controller.plans_deployed());
  return 0;
}
