// Command-line experiment runner: expose the full experiment harness as a
// single binary so new configurations can be explored without writing
// code.
//
// Usage examples:
//   run_experiment --scheme netrs-ilp --clients 700 --utilization 0.9
//   run_experiment --scheme clirs-r95c --requests 500000 --skew 0.8
//   run_experiment --scheme netrs-ilp --algorithm two-choices --share-accel
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"

using namespace netrs;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --scheme S        clirs | clirs-r95 | clirs-r95c | netrs-tor |\n"
      "                    netrs-ilp              (default netrs-ilp)\n"
      "  --k N             fat-tree arity         (default 16)\n"
      "  --servers N       KV servers             (default 100)\n"
      "  --clients N       clients                (default 500)\n"
      "  --utilization F   system utilization     (default 0.9)\n"
      "  --skew F          20%%-client demand share (default 0 = uniform)\n"
      "  --tkv MS          mean service time, ms  (default 4)\n"
      "  --requests N      total requests         (default 120000)\n"
      "  --repeats N       deployments merged     (default 2)\n"
      "  --algorithm A     c3 | c3-norate | least-outstanding |\n"
      "                    two-choices | ewma-latency | random\n"
      "  --granularity G   rack | host | subrack4 (default rack)\n"
      "  --hop-budget F    E as fraction of A     (default 0.2)\n"
      "  --share-accel     share one accelerator per core group\n"
      "  --seed N          RNG seed               (default 1)\n"
      "  --jobs N          worker threads for repeats (default: all\n"
      "                    cores; 1 = serial; results are identical)\n"
      "  --shards N        event-queue shards per repeat (default 1;\n"
      "                    clamped to the pod count; digests identical\n"
      "                    at any value); also NETRS_SHARDS\n"
      "  --multiplicity N  logical client streams per client object\n"
      "                    (default 1; scales C3 concurrency accounting\n"
      "                    only, not the arrival rate)\n"
      "  --trace FILE      write a Chrome trace-event JSON of per-request\n"
      "                    lifecycle spans (open in Perfetto); also\n"
      "                    --trace=FILE or NETRS_TRACE\n"
      "  --metrics FILE    write a sampled metrics CSV time series; also\n"
      "                    --metrics=FILE or NETRS_METRICS\n"
      "  --attribution FILE  write the per-request latency-attribution CSV\n"
      "                    (flight recorder); also --attribution=FILE or\n"
      "                    NETRS_ATTRIBUTION\n"
      "  --decisions FILE  write the per-decision audit CSV (oracle regret,\n"
      "                    feedback staleness, herd index); also\n"
      "                    --decisions=FILE or NETRS_DECISIONS\n"
      "  --trace-capacity N  trace ring size per repeat (default 65536,\n"
      "                    per shard ring); also NETRS_TRACE_CAPACITY\n"
      "  --shard-telemetry FILE  write the engine self-telemetry CSV:\n"
      "                    per-shard windows, events, execute vs. stall\n"
      "                    wall time in sim-time buckets (wall-clock\n"
      "                    based, nondeterministic; all other outputs\n"
      "                    stay byte-identical); also NETRS_SHARD_TELEMETRY\n"
      "  --faults PLAN     fault-injection plan (docs/SCENARIOS.md), e.g.\n"
      "                    \"at 5s crash server 0; at 10s recover server 0\"\n"
      "                    or @file; also --faults=PLAN or NETRS_FAULTS\n"
      "  --timeline-bucket MS  record a latency timeline with this bucket\n"
      "                    width in sim ms (default off)\n",
      argv0);
}

bool parse_scheme(const std::string& s, harness::Scheme* out) {
  if (s == "clirs") *out = harness::Scheme::kCliRS;
  else if (s == "clirs-r95") *out = harness::Scheme::kCliRSR95;
  else if (s == "clirs-r95c") *out = harness::Scheme::kCliRSR95Cancel;
  else if (s == "netrs-tor") *out = harness::Scheme::kNetRSToR;
  else if (s == "netrs-ilp") *out = harness::Scheme::kNetRSIlp;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig cfg = harness::default_config();
  harness::Scheme scheme = harness::Scheme::kNetRSIlp;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scheme") {
      if (!parse_scheme(next(), &scheme)) {
        std::fprintf(stderr, "unknown scheme\n");
        return 2;
      }
    } else if (arg == "--k") {
      cfg.fat_tree_k = std::atoi(next());
    } else if (arg == "--servers") {
      cfg.num_servers = std::atoi(next());
    } else if (arg == "--clients") {
      cfg.num_clients = std::atoi(next());
    } else if (arg == "--utilization") {
      cfg.utilization = std::atof(next());
    } else if (arg == "--skew") {
      cfg.demand_skew = std::atof(next());
    } else if (arg == "--tkv") {
      cfg.mean_service_time = sim::millis(std::atof(next()));
      cfg.selector.c3.service_time_prior = cfg.mean_service_time;
    } else if (arg == "--requests") {
      cfg.total_requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--repeats") {
      cfg.repeats = std::atoi(next());
    } else if (arg == "--algorithm") {
      cfg.selector.algorithm = next();
    } else if (arg == "--granularity") {
      const std::string g = next();
      if (g == "rack") {
        cfg.granularity = core::GroupGranularity::kRack;
      } else if (g == "host") {
        cfg.granularity = core::GroupGranularity::kHost;
      } else if (g == "subrack4") {
        cfg.granularity = core::GroupGranularity::kSubRack;
        cfg.sub_rack_hosts = 4;
      } else {
        std::fprintf(stderr, "unknown granularity\n");
        return 2;
      }
    } else if (arg == "--hop-budget") {
      cfg.extra_hop_fraction = std::atof(next());
    } else if (arg == "--share-accel") {
      cfg.share_core_accelerators = true;
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      cfg.jobs = std::atoi(next());
    } else if (arg == "--shards") {
      cfg.shards = std::atoi(next());
    } else if (arg == "--multiplicity") {
      cfg.client_multiplicity = std::atoi(next());
    } else if (arg == "--trace") {
      cfg.obs.trace_path = next();
    } else if (arg.rfind("--trace=", 0) == 0) {
      cfg.obs.trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--metrics") {
      cfg.obs.metrics_path = next();
    } else if (arg.rfind("--metrics=", 0) == 0) {
      cfg.obs.metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--attribution") {
      cfg.obs.attribution_path = next();
    } else if (arg.rfind("--attribution=", 0) == 0) {
      cfg.obs.attribution_path = arg.substr(std::strlen("--attribution="));
    } else if (arg == "--decisions") {
      cfg.obs.decision_path = next();
    } else if (arg.rfind("--decisions=", 0) == 0) {
      cfg.obs.decision_path = arg.substr(std::strlen("--decisions="));
    } else if (arg == "--faults") {
      cfg.fault_plan = next();
    } else if (arg.rfind("--faults=", 0) == 0) {
      cfg.fault_plan = arg.substr(std::strlen("--faults="));
    } else if (arg == "--timeline-bucket") {
      cfg.timeline_bucket = sim::millis(std::atof(next()));
    } else if (arg == "--trace-capacity") {
      cfg.obs.trace_capacity =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--shard-telemetry") {
      cfg.shard_telemetry_path = next();
    } else if (arg.rfind("--shard-telemetry=", 0) == 0) {
      cfg.shard_telemetry_path =
          arg.substr(std::strlen("--shard-telemetry="));
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  std::printf("running %s: k=%d servers=%d clients=%d util=%.0f%% "
              "skew=%.0f%% tkv=%.1fms requests=%llu x%d algo=%s jobs=%d "
              "shards=%d\n",
              harness::scheme_name(scheme), cfg.fat_tree_k, cfg.num_servers,
              cfg.num_clients, cfg.utilization * 100.0,
              cfg.demand_skew * 100.0, sim::to_millis(cfg.mean_service_time),
              static_cast<unsigned long long>(cfg.total_requests),
              cfg.repeats, cfg.selector.algorithm.c_str(),
              harness::resolve_jobs(cfg.jobs), cfg.shards);
  std::fflush(stdout);

  const harness::ExperimentResult r = harness::run_experiment(scheme, cfg);
  std::printf("\nlatency (ms): mean %.3f | p50 %.3f | p95 %.3f | p99 %.3f "
              "| p99.9 %.3f | max %.3f\n",
              r.mean_ms(), r.percentile_ms(0.50), r.percentile_ms(0.95),
              r.percentile_ms(0.99), r.percentile_ms(0.999),
              r.latencies_ms.empty() ? 0.0 : r.latencies_ms.max());
  std::printf("samples %zu | issued %llu | completed %llu | redundant %llu "
              "| cancels %llu\n",
              r.latencies_ms.count(),
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.redundant),
              static_cast<unsigned long long>(r.cancels));
  std::printf("RSNodes %d (%s, %d plans, %zu DRS groups) | fwd/req %.2f | "
              "KB/req %.2f | herd CV %.2f | wall %.1fs\n",
              r.rsnodes, r.plan_method.c_str(), r.plans_deployed,
              r.drs_groups, r.avg_forwards,
              r.wire_bytes_per_request / 1024.0, r.load_oscillation,
              r.wall_seconds);
  if (r.events_per_shard.size() > 1) {
    std::printf("events per shard:");
    for (std::size_t s = 0; s < r.events_per_shard.size(); ++s) {
      std::printf(" s%zu=%llu", s,
                  static_cast<unsigned long long>(r.events_per_shard[s]));
    }
    std::printf("\n");
  }
  if (!cfg.obs.trace_path.empty()) {
    std::printf("trace: %llu events -> %s (%llu dropped to ring "
                "wraparound; open at https://ui.perfetto.dev)\n",
                static_cast<unsigned long long>(r.trace_events),
                cfg.obs.trace_path.c_str(),
                static_cast<unsigned long long>(r.trace_dropped));
    for (std::size_t rep = 0; rep < r.trace_repeats.size(); ++rep) {
      std::printf("  repeat %zu: %llu recorded, %llu dropped\n", rep,
                  static_cast<unsigned long long>(
                      r.trace_repeats[rep].recorded),
                  static_cast<unsigned long long>(
                      r.trace_repeats[rep].dropped));
      const auto& lanes = r.trace_repeats[rep].lanes;
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        if (lanes[lane].dropped == 0) continue;
        const bool coord = lanes.size() > 1 && lane + 1 == lanes.size();
        const std::string label =
            coord ? "coordinator" : "shard " + std::to_string(lane);
        std::printf("    %s ring: %llu recorded, %llu dropped\n",
                    label.c_str(),
                    static_cast<unsigned long long>(lanes[lane].recorded),
                    static_cast<unsigned long long>(lanes[lane].dropped));
      }
    }
    if (r.trace_dropped > 0) {
      // Name the shard whose ring wrapped hardest so --trace-capacity
      // tuning targets the right lane.
      std::uint64_t worst = 0;
      std::size_t worst_lane = 0;
      bool worst_coord = false;
      for (const auto& t : r.trace_repeats) {
        for (std::size_t lane = 0; lane < t.lanes.size(); ++lane) {
          if (t.lanes[lane].dropped > worst) {
            worst = t.lanes[lane].dropped;
            worst_lane = lane;
            worst_coord = t.lanes.size() > 1 && lane + 1 == t.lanes.size();
          }
        }
      }
      if (worst > 0) {
        std::printf("WARNING: %llu trace events dropped (worst ring: %s%s, "
                    "%llu dropped); raise --trace-capacity (currently %zu, "
                    "per shard ring) to keep them\n",
                    static_cast<unsigned long long>(r.trace_dropped),
                    worst_coord ? "coordinator" : "shard ",
                    worst_coord ? "" : std::to_string(worst_lane).c_str(),
                    static_cast<unsigned long long>(worst),
                    cfg.obs.trace_capacity);
      } else {
        std::printf("WARNING: %llu trace events dropped; raise "
                    "--trace-capacity (currently %zu) to keep them\n",
                    static_cast<unsigned long long>(r.trace_dropped),
                    cfg.obs.trace_capacity);
      }
    }
  }
  if (!cfg.shard_telemetry_path.empty()) {
    std::printf("shard telemetry: %s (per-shard windows/events/exec/stall "
                "in sim-time buckets; wall-clock based, nondeterministic)\n",
                cfg.shard_telemetry_path.c_str());
  }
  if (!cfg.obs.metrics_path.empty()) {
    std::printf("metrics: %s (long-format CSV: repeat,time_us,metric,value)\n",
                cfg.obs.metrics_path.c_str());
    for (const obs::MetricSummaryEntry& e : r.metrics.entries) {
      std::printf("  %-18s samples %llu | min %s | mean %s | max %s | "
                  "last %s\n",
                  e.name.c_str(), static_cast<unsigned long long>(e.samples),
                  obs::format_metric_value(e.min).c_str(),
                  obs::format_metric_value(e.mean).c_str(),
                  obs::format_metric_value(e.max).c_str(),
                  obs::format_metric_value(e.last).c_str());
    }
  }
  if (!cfg.obs.attribution_path.empty()) {
    std::printf("attribution: %llu requests -> %s (dup wins %llu, via "
                "RSNode %llu, unmatched %llu)\n",
                static_cast<unsigned long long>(r.attribution.requests),
                cfg.obs.attribution_path.c_str(),
                static_cast<unsigned long long>(r.attribution.dup_wins),
                static_cast<unsigned long long>(r.attribution.via_rs),
                static_cast<unsigned long long>(r.attribution.unmatched));
    for (std::size_t c = 0; c < obs::kFlightComponents; ++c) {
      const sim::LatencyRecorder& rec = r.attribution.components_ms[c];
      std::printf("  %-12s mean %.4f ms | p99 %.4f ms\n",
                  obs::kFlightComponentNames[c],
                  rec.empty() ? 0.0 : rec.mean(),
                  rec.empty() ? 0.0 : rec.percentile(0.99));
    }
  }
  if (!cfg.obs.decision_path.empty()) {
    std::printf("decisions: %llu audited -> %s | regret mean %.4f ms p99 "
                "%.4f ms | staleness mean %.4f ms | herd %.3f\n",
                static_cast<unsigned long long>(r.decisions.decisions),
                cfg.obs.decision_path.c_str(),
                r.decisions.regret_ms.empty()
                    ? 0.0
                    : r.decisions.regret_ms.mean(),
                r.decisions.regret_ms.empty()
                    ? 0.0
                    : r.decisions.regret_ms.percentile(0.99),
                r.decisions.staleness_ms.empty()
                    ? 0.0
                    : r.decisions.staleness_ms.mean(),
                r.decisions.herd.empty() ? 0.0 : r.decisions.herd.mean());
  }
  if (r.fault.enabled) {
    harness::print_fault_phases(harness::scheme_name(scheme), r);
  }
  return 0;
}
