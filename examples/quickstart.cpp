// Quickstart: run one small NetRS experiment per scheme and print the
// latency distributions.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main() {
  using namespace netrs;

  // A laptop-sized slice of the paper's setup: an 8-ary fat-tree (128
  // hosts), 20 servers, 60 clients, ~12k requests per scheme.
  harness::ExperimentConfig cfg = harness::default_config();
  cfg.fat_tree_k = 8;
  cfg.num_servers = 20;
  cfg.num_clients = 60;
  cfg.total_requests = 12'000;
  cfg.utilization = 0.9;

  harness::SweepReport report;
  report.title = "Quickstart — one point, all four schemes";
  report.sweep_label = "setup";
  report.sweep_values = {"default"};
  report.schemes = {harness::Scheme::kCliRS, harness::Scheme::kCliRSR95,
                    harness::Scheme::kNetRSToR, harness::Scheme::kNetRSIlp};

  report.results.emplace_back();
  for (harness::Scheme s : report.schemes) {
    std::printf("running %s...\n", harness::scheme_name(s));
    report.results[0].push_back(harness::run_experiment(s, cfg));
  }
  harness::print_report(report);

  const auto& ilp = report.results[0][3];
  std::printf(
      "\nNetRS-ILP plan: %d RSNodes (method %s, %d plans deployed, %zu DRS "
      "groups)\n",
      ilp.rsnodes, ilp.plan_method.c_str(), ilp.plans_deployed,
      ilp.drs_groups);
  return 0;
}
