// Example: plugging a *custom* replica-selection algorithm into NetRS.
//
// The paper's claim (§IV-C) is that NetRS supports diverse selection
// algorithms because the selector runs on the network accelerator behind a
// narrow interface. This example implements a new algorithm — a latency-
// weighted queue heuristic that is not part of the library — and deploys
// it on every NetRS operator of a small cluster, side by side with C3.
#include <cstdio>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "kv/client.hpp"
#include "kv/consistent_hash.hpp"
#include "kv/server.hpp"
#include "net/switch.hpp"
#include "netrs/controller.hpp"
#include "netrs/operator.hpp"
#include "rs/baselines.hpp"
#include "sim/stats.hpp"

using namespace netrs;

namespace {

// A custom algorithm: score = EWMA(latency) * (1 + queue + outstanding).
// Nothing in the framework knows about it; it only implements
// rs::ReplicaSelector.
class WeightedQueueSelector final : public rs::ReplicaSelector {
 public:
  explicit WeightedQueueSelector(sim::Rng rng) : rng_(rng) {}

  net::HostId select(std::span<const net::HostId> candidates) override {
    net::HostId best = candidates[0];
    double best_score = 1e300;
    for (net::HostId h : candidates) {
      const State& s = state_[h];
      const double lat = s.latency_us.value_or(1000.0);
      const double score =
          lat * (1.0 + s.queue + s.outstanding) *
          (0.95 + 0.1 * rng_.next_double());  // jitter breaks herds
      if (score < best_score) {
        best_score = score;
        best = h;
      }
    }
    return best;
  }

  void on_send(net::HostId server) override { ++state_[server].outstanding; }

  void on_response(const rs::Feedback& fb) override {
    State& s = state_[fb.server];
    if (s.outstanding > 0) --s.outstanding;
    s.queue = fb.queue_size;
    if (fb.has_response_time) {
      s.latency_us.add(sim::to_micros(fb.response_time));
    }
  }

  [[nodiscard]] std::string name() const override { return "weighted-queue"; }

 private:
  struct State {
    sim::Ewma latency_us{0.8};
    std::uint32_t queue = 0;
    std::uint32_t outstanding = 0;
  };
  sim::Rng rng_;
  std::unordered_map<net::HostId, State> state_;
};

// Builds a small NetRS cluster and runs `selector_factory` on every
// operator; returns the measured latency distribution.
sim::LatencyRecorder run_with(core::SelectorFactory make_one_selector,
                              const char* label) {
  sim::Simulator sim;
  net::FatTree topo(8);
  net::Fabric fabric(sim, topo, net::FabricConfig{});
  std::vector<std::unique_ptr<net::Switch>> switches;
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    switches.push_back(std::make_unique<net::Switch>(fabric, sw));
    fabric.attach(sw, switches.back().get());
  }

  sim::Rng root(7);
  std::vector<net::HostId> hosts(topo.host_count());
  std::iota(hosts.begin(), hosts.end(), net::HostId{0});
  root.shuffle(hosts);
  std::vector<net::HostId> server_hosts(hosts.begin(), hosts.begin() + 20);
  std::vector<net::HostId> client_hosts(hosts.begin() + 20,
                                        hosts.begin() + 80);

  kv::ConsistentHashRing ring(server_hosts, 3, 16);
  sim::ZipfDistribution zipf(1'000'000, 0.99);
  core::TrafficGroups groups(topo, core::GroupGranularity::kRack);

  auto directory = std::make_shared<core::RsNodeDirectory>();
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    (*directory)[static_cast<core::RsNodeId>(sw + 1)] = sw;
  }
  auto bootstrap = std::make_shared<const core::GroupRidTable>(
      groups.group_count(), core::kRidIllegal);
  std::vector<std::unique_ptr<core::NetRSOperator>> operators;
  for (net::NodeId sw = 0; sw < topo.switch_count(); ++sw) {
    operators.push_back(std::make_unique<core::NetRSOperator>(
        fabric, *switches[sw], static_cast<core::RsNodeId>(sw + 1),
        core::AcceleratorConfig{}, directory, ring.groups(),
        make_one_selector, &groups, bootstrap));
  }

  core::ControllerConfig ctrl_cfg;
  ctrl_cfg.mode = core::PlanMode::kIlp;
  ctrl_cfg.replan_interval = sim::millis(100);
  std::vector<core::NetRSOperator*> ptrs;
  for (auto& op : operators) ptrs.push_back(op.get());
  core::Controller controller(sim, topo, groups, std::move(ptrs), ctrl_cfg);
  controller.start();

  kv::ServerConfig scfg;
  scfg.mean_service_time = sim::millis(4);
  std::vector<std::unique_ptr<kv::Server>> servers;
  for (net::HostId h : server_hosts) {
    servers.push_back(
        std::make_unique<kv::Server>(fabric, h, scfg, root.child(h)));
  }

  kv::ClientConfig ccfg;
  ccfg.mode = kv::ClientMode::kNetRS;
  // 90% utilization over 20 servers x4 slots at 4ms: 18000 req/s total.
  ccfg.arrival_rate = 18000.0 / client_hosts.size();
  sim::LatencyRecorder rec;
  std::vector<std::unique_ptr<kv::Client>> clients;
  for (net::HostId h : client_hosts) {
    clients.push_back(std::make_unique<kv::Client>(
        fabric, h, ccfg, ring, zipf, root.child(0x1000 + h)));
    clients.back()->set_completion_callback(
        [&rec, &sim](const kv::Client::Completion& c) {
          if (sim.now() > sim::millis(300)) {  // skip warmup
            rec.add(sim::to_millis(c.latency));
          }
        });
    clients.back()->start();
  }

  sim.run_until(sim::seconds(1.5));
  for (auto& c : clients) c->stop();
  sim.run_until(sim.now() + sim::millis(200));

  rec.finalize();
  std::printf("%-16s mean %6.3f ms   p99 %7.3f ms   (%zu samples, %d "
              "RSNodes)\n",
              label, rec.mean(), rec.percentile(0.99), rec.count(),
              controller.active_rsnodes());
  return rec;
}

}  // namespace

int main() {
  std::printf("NetRS with a custom replica-selection algorithm\n");
  std::printf("------------------------------------------------\n");

  int seed = 0;
  run_with(
      [&seed] {
        return std::make_unique<WeightedQueueSelector>(sim::Rng(++seed));
      },
      "weighted-queue");

  // The same cluster with the library's C3 for comparison. Each operator
  // gets a fresh instance, exactly like the custom one.
  // (Selector instances need the experiment's simulator; for simplicity the
  // factory here closes over a per-run simulator via rs::make_selector in
  // the harness — this example keeps C3's rate control off.)
  int seed2 = 0;
  run_with(
      [&seed2] {
        // LeastOutstanding is the stand-in library algorithm here; see
        // bench/ablation_algorithms for the full C3 comparison.
        return std::make_unique<rs::LeastOutstandingSelector>(
            sim::Rng(++seed2));
      },
      "least-outstanding");
  return 0;
}
